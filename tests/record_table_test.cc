// Unit tests for the RecordTable arena (congest/record_table.h): the slot
// pool, row proxies, copy semantics (including same-table row copies during
// pool growth), cursors, and the reset contract.
#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

#include "congest/record_table.h"

namespace cpt::congest {
namespace {

std::vector<std::pair<std::uint64_t, std::int64_t>> contents(
    RecordTable::ConstRow row) {
  std::vector<std::pair<std::uint64_t, std::int64_t>> out;
  for (const Record& r : row) out.push_back({r.key, r.value});
  return out;
}

using Pairs = std::vector<std::pair<std::uint64_t, std::int64_t>>;

TEST(RecordTable, PushAndIterateKeepsPerRowOrder) {
  RecordTable t;
  t.reset(4);
  t.push(2, {7, 70}, RecordTable::kDriverShard);
  t.push(0, {1, 10}, RecordTable::kDriverShard);
  t.push(2, {8, 80}, RecordTable::kDriverShard);  // interleaved with row 0
  t.push(0, {2, 20}, RecordTable::kDriverShard);
  EXPECT_EQ(contents(t[0]), (Pairs{{1, 10}, {2, 20}}));
  EXPECT_EQ(contents(t[2]), (Pairs{{7, 70}, {8, 80}}));
  EXPECT_TRUE(t[1].empty());
  EXPECT_EQ(t[2].size(), 2u);
  EXPECT_EQ(t[2][1].value, 80);
}

TEST(RecordTable, InitializerListAssignReplacesContents) {
  RecordTable t;
  t.reset(2);
  t[1] = {{1, 1}, {2, 2}, {3, 3}};
  EXPECT_EQ(t[1].size(), 3u);
  t[1] = {{9, 9}};
  EXPECT_EQ(contents(t[1]), (Pairs{{9, 9}}));
}

TEST(RecordTable, RowCopyAcrossAndWithinTables) {
  RecordTable a;
  RecordTable b;
  a.reset(3);
  b.reset(3);
  a[0] = {{1, 10}, {2, 20}};
  b[2] = a[0];  // cross-table
  EXPECT_EQ(contents(b[2]), (Pairs{{1, 10}, {2, 20}}));
  a[1] = a[0];  // same table, different row (pool grows mid-copy)
  EXPECT_EQ(contents(a[1]), (Pairs{{1, 10}, {2, 20}}));
  a[1] = a[1];  // self-copy is a no-op
  EXPECT_EQ(contents(a[1]), (Pairs{{1, 10}, {2, 20}}));
  // Source row unchanged by any of it.
  EXPECT_EQ(contents(a[0]), (Pairs{{1, 10}, {2, 20}}));
}

TEST(RecordTable, SameTableCopySurvivesPoolGrowth) {
  // Force reallocation during the copy: fill a row large enough that
  // appending a duplicate doubles the pool.
  RecordTable t;
  t.reset(2);
  for (std::uint64_t k = 0; k < 100; ++k) {
    t.push(0, {k, static_cast<std::int64_t>(k)}, RecordTable::kDriverShard);
  }
  t[1] = t[0];
  EXPECT_EQ(contents(t[1]), contents(t[0]));
  EXPECT_EQ(t[1].size(), 100u);
}

TEST(RecordTable, ClearRowAndRepush) {
  RecordTable t;
  t.reset(2);
  t[0] = {{1, 1}};
  t[0].clear();
  EXPECT_TRUE(t[0].empty());
  t.push(0, {5, 50}, RecordTable::kDriverShard);
  EXPECT_EQ(contents(t[0]), (Pairs{{5, 50}}));
}

TEST(RecordTable, ResetClearsTouchedRowsAndReusesThePool) {
  RecordTable t;
  t.reset(8);
  t[3] = {{1, 1}};
  t[5] = {{2, 2}, {3, 3}};
  EXPECT_FALSE(t.touched_rows().empty());
  t.reset(8);
  for (std::uint32_t v = 0; v < 8; ++v) EXPECT_TRUE(t[v].empty()) << v;
  EXPECT_TRUE(t.touched_rows().empty());
  // Rows written after the reset start fresh.
  t[5] = {{9, 9}};
  EXPECT_EQ(contents(t[5]), (Pairs{{9, 9}}));
}

TEST(RecordTable, ResetResizes) {
  RecordTable t;
  t.reset(2);
  t[1] = {{1, 1}};
  t.reset(5);
  EXPECT_EQ(t.num_rows(), 5u);
  for (std::uint32_t v = 0; v < 5; ++v) EXPECT_TRUE(t[v].empty());
}

TEST(RecordTable, CursorWalksARowAndResetsWithIt) {
  RecordTable t;
  t.reset(2);
  t[0] = {{1, 10}, {2, 20}, {3, 30}};
  EXPECT_EQ(t.cursor(0), RecordTable::kNilSlot);
  t.set_cursor(0, t.head_slot(0));
  std::vector<std::int64_t> seen;
  while (t.cursor(0) != RecordTable::kNilSlot) {
    seen.push_back(t.at_slot(t.cursor(0)).value);
    t.set_cursor(0, t.next_slot(t.cursor(0)));
  }
  EXPECT_EQ(seen, (std::vector<std::int64_t>{10, 20, 30}));
  t.reset(2);
  EXPECT_EQ(t.cursor(0), RecordTable::kNilSlot);
}

TEST(RecordTable, MutableIterationUpdatesInPlace) {
  RecordTable t;
  t.reset(1);
  t[0] = {{1, 1}, {2, 2}};
  for (Record& r : t[0]) r.value *= 10;
  EXPECT_EQ(contents(t[0]), (Pairs{{1, 10}, {2, 20}}));
}

TEST(RecordTable, TouchedRowsCoverEveryNonEmptyRow) {
  RecordTable t;
  t.reset(100);
  t[10] = {{1, 1}};
  t[20] = {{2, 2}};
  t[10].clear();
  t.push(10, {3, 3}, RecordTable::kDriverShard);
  std::vector<bool> covered(100, false);
  for (const std::uint32_t v : t.touched_rows()) covered[v] = true;
  for (std::uint32_t v = 0; v < 100; ++v) {
    if (!t[v].empty()) {
      EXPECT_TRUE(covered[v]) << v;
    }
  }
}

// ---- Sharded slot pools (parallel rounds) --------------------------------

TEST(RecordTableShards, PushesToDistinctShardsKeepPerRowOrder) {
  RecordTable t;
  t.reset(4);
  // One row fed from three shards in sequence: the chain must cross the
  // shard arenas transparently and preserve push order.
  t.push(1, {1, 10}, 0);
  t.push(1, {2, 20}, 3);
  t.push(1, {3, 30}, 1);
  t.push(1, {4, 40}, 3);
  EXPECT_EQ(contents(t[1]), (Pairs{{1, 10}, {2, 20}, {3, 30}, {4, 40}}));
  // Slot encoding round-trips through the chain accessors.
  std::uint32_t slot = t.head_slot(1);
  int count = 0;
  while (slot != RecordTable::kNilSlot) {
    ++count;
    slot = t.next_slot(slot);
  }
  EXPECT_EQ(count, 4);
}

TEST(RecordTableShards, TouchedRowsSpanShards) {
  RecordTable t;
  t.reset(50);
  t.push(5, {1, 1}, 0);
  t.push(7, {2, 2}, 2);
  t.push(9, {3, 3}, 4);
  std::vector<bool> covered(50, false);
  for (const std::uint32_t v : t.touched_rows()) covered[v] = true;
  EXPECT_TRUE(covered[5]);
  EXPECT_TRUE(covered[7]);
  EXPECT_TRUE(covered[9]);
}

TEST(RecordTableShards, WatermarkResetRearmsEveryShard) {
  RecordTable t;
  t.reset(8);
  for (std::uint32_t s : {0u, 1u, 2u}) {
    for (std::uint32_t i = 0; i < 5; ++i) t.push(s, {s, i}, s);
  }
  t.reset(8);
  for (std::uint32_t v = 0; v < 8; ++v) EXPECT_TRUE(t[v].empty()) << v;
  // Refill after reset: watermarks restarted, old slots recycled, rows
  // rebuilt from scratch in every shard.
  t.push(0, {9, 90}, 2);
  t.push(0, {8, 80}, 1);
  EXPECT_EQ(contents(t[0]), (Pairs{{9, 90}, {8, 80}}));
  t.reset(8);
  EXPECT_TRUE(t[0].empty());
}

TEST(RecordTableShards, CursorStreamsAcrossShardBoundaries) {
  RecordTable t;
  t.reset(2);
  t.push(0, {1, 10}, 0);
  t.push(0, {2, 20}, 5);
  t.push(0, {3, 30}, 1);
  t.set_cursor(0, t.head_slot(0));
  Pairs walked;
  for (std::uint32_t slot = t.cursor(0); slot != RecordTable::kNilSlot;
       slot = t.next_slot(slot)) {
    walked.push_back({t.at_slot(slot).key, t.at_slot(slot).value});
  }
  EXPECT_EQ(walked, (Pairs{{1, 10}, {2, 20}, {3, 30}}));
}

// The concurrency contract of the simulator's parallel rounds: each worker
// pushes to its own rows through its own shard, concurrently with the
// others; after the joins, every row holds exactly its worker's pushes in
// order. (Run under the TSAN CI leg, this is the lock-freedom proof.)
TEST(RecordTableShards, ConcurrentPerShardAppendsAreIsolated) {
  constexpr std::uint32_t kWorkers = 4;
  constexpr std::uint32_t kRowsPerWorker = 64;
  constexpr std::uint32_t kPushesPerRow = 32;
  RecordTable t;
  t.reset(kWorkers * kRowsPerWorker);
  std::vector<std::thread> threads;
  for (std::uint32_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&t, w] {
      // Worker w owns rows [w*kRowsPerWorker, (w+1)*kRowsPerWorker) and
      // pushes through shard w+1 (shard 0 is the driver's).
      for (std::uint32_t i = 0; i < kPushesPerRow; ++i) {
        for (std::uint32_t r = 0; r < kRowsPerWorker; ++r) {
          const std::uint32_t row = w * kRowsPerWorker + r;
          t.push(row, {row, static_cast<std::int64_t>(i)}, w + 1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (std::uint32_t row = 0; row < kWorkers * kRowsPerWorker; ++row) {
    ASSERT_EQ(t.size(row), kPushesPerRow) << row;
    std::int64_t expect = 0;
    for (const Record& rec : t[row]) {
      EXPECT_EQ(rec.key, row);
      EXPECT_EQ(rec.value, expect++);
    }
  }
}

// Driver rows (shard 0) written before the threads start must stay
// readable while other shards grow -- the frozen-shard-0 guarantee the
// converge/broadcast passes rely on.
TEST(RecordTableShards, FrozenDriverShardReadableDuringWorkerGrowth) {
  RecordTable t;
  t.reset(16);
  for (std::uint32_t v = 0; v < 8; ++v) {
    t.push(v, {v, static_cast<std::int64_t>(v) * 10}, 0);
  }
  std::vector<std::thread> threads;
  for (std::uint32_t w = 0; w < 2; ++w) {
    threads.emplace_back([&t, w] {
      for (std::uint32_t i = 0; i < 20000; ++i) {
        t.push(8 + w, {i, 1}, w + 1);  // force repeated pool growth
      }
    });
  }
  // Reader thread: walks the frozen shard-0 rows concurrently.
  std::thread reader([&t] {
    for (int pass = 0; pass < 200; ++pass) {
      for (std::uint32_t v = 0; v < 8; ++v) {
        for (const Record& rec : t[v]) {
          ASSERT_EQ(rec.value, static_cast<std::int64_t>(rec.key) * 10);
        }
      }
    }
  });
  for (std::thread& th : threads) th.join();
  reader.join();
  EXPECT_EQ(t.size(8), 20000u);
  EXPECT_EQ(t.size(9), 20000u);
}

TEST(RecordTableShards, ChainsSpanArenaChunks) {
  // A shard's arena grows in chunks of 1024, 2048, 4096... slots; one long
  // row (and interleaved neighbours) must chain transparently across the
  // chunk boundaries.
  RecordTable t;
  t.reset(3);
  constexpr std::uint32_t kCount = 5000;  // spans chunks 0..2
  for (std::uint32_t i = 0; i < kCount; ++i) {
    t.push(0, {i, static_cast<std::int64_t>(i)}, 1);
    t.push(1, {i, -static_cast<std::int64_t>(i)}, 1);
  }
  EXPECT_EQ(t.size(0), kCount);
  EXPECT_EQ(t.size(1), kCount);
  std::uint64_t want = 0;
  for (const Record& rec : t[0]) {
    ASSERT_EQ(rec.key, want);
    ASSERT_EQ(rec.value, static_cast<std::int64_t>(want));
    ++want;
  }
  EXPECT_EQ(want, kCount);
  want = 0;
  for (const Record& rec : t[1]) {
    ASSERT_EQ(rec.value, -static_cast<std::int64_t>(want));
    ++want;
  }
  // Reset reuses the chunks: re-filling lands on the same capacity.
  t.reset(3);
  for (std::uint32_t i = 0; i < kCount; ++i) t.push(2, {i, 7}, 1);
  EXPECT_EQ(t.size(2), kCount);
}

TEST(RecordTableShards, SlotAddressesAreStableAcrossGrowth) {
  // The rebalancing safety argument rests on this: a record's address never
  // moves once pushed, no matter how much the shard's arena grows after.
  RecordTable t;
  t.reset(2);
  t.push(0, {42, 420}, 1);
  const Record* early = &t.at_slot(t.head_slot(0));
  for (std::uint32_t i = 0; i < 100000; ++i) {  // many chunk allocations
    t.push(1, {i, 1}, 1);
  }
  EXPECT_EQ(early, &t.at_slot(t.head_slot(0)));
  EXPECT_EQ(early->key, 42u);
  EXPECT_EQ(early->value, 420);
}

}  // namespace
}  // namespace cpt::congest
