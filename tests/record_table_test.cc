// Unit tests for the RecordTable arena (congest/record_table.h): the slot
// pool, row proxies, copy semantics (including same-table row copies during
// pool growth), cursors, and the reset contract.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "congest/record_table.h"

namespace cpt::congest {
namespace {

std::vector<std::pair<std::uint64_t, std::int64_t>> contents(
    RecordTable::ConstRow row) {
  std::vector<std::pair<std::uint64_t, std::int64_t>> out;
  for (const Record& r : row) out.push_back({r.key, r.value});
  return out;
}

using Pairs = std::vector<std::pair<std::uint64_t, std::int64_t>>;

TEST(RecordTable, PushAndIterateKeepsPerRowOrder) {
  RecordTable t;
  t.reset(4);
  t.push(2, {7, 70});
  t.push(0, {1, 10});
  t.push(2, {8, 80});  // interleaved with row 0
  t.push(0, {2, 20});
  EXPECT_EQ(contents(t[0]), (Pairs{{1, 10}, {2, 20}}));
  EXPECT_EQ(contents(t[2]), (Pairs{{7, 70}, {8, 80}}));
  EXPECT_TRUE(t[1].empty());
  EXPECT_EQ(t[2].size(), 2u);
  EXPECT_EQ(t[2][1].value, 80);
}

TEST(RecordTable, InitializerListAssignReplacesContents) {
  RecordTable t;
  t.reset(2);
  t[1] = {{1, 1}, {2, 2}, {3, 3}};
  EXPECT_EQ(t[1].size(), 3u);
  t[1] = {{9, 9}};
  EXPECT_EQ(contents(t[1]), (Pairs{{9, 9}}));
}

TEST(RecordTable, RowCopyAcrossAndWithinTables) {
  RecordTable a;
  RecordTable b;
  a.reset(3);
  b.reset(3);
  a[0] = {{1, 10}, {2, 20}};
  b[2] = a[0];  // cross-table
  EXPECT_EQ(contents(b[2]), (Pairs{{1, 10}, {2, 20}}));
  a[1] = a[0];  // same table, different row (pool grows mid-copy)
  EXPECT_EQ(contents(a[1]), (Pairs{{1, 10}, {2, 20}}));
  a[1] = a[1];  // self-copy is a no-op
  EXPECT_EQ(contents(a[1]), (Pairs{{1, 10}, {2, 20}}));
  // Source row unchanged by any of it.
  EXPECT_EQ(contents(a[0]), (Pairs{{1, 10}, {2, 20}}));
}

TEST(RecordTable, SameTableCopySurvivesPoolGrowth) {
  // Force reallocation during the copy: fill a row large enough that
  // appending a duplicate doubles the pool.
  RecordTable t;
  t.reset(2);
  for (std::uint64_t k = 0; k < 100; ++k) {
    t.push(0, {k, static_cast<std::int64_t>(k)});
  }
  t[1] = t[0];
  EXPECT_EQ(contents(t[1]), contents(t[0]));
  EXPECT_EQ(t[1].size(), 100u);
}

TEST(RecordTable, ClearRowAndRepush) {
  RecordTable t;
  t.reset(2);
  t[0] = {{1, 1}};
  t[0].clear();
  EXPECT_TRUE(t[0].empty());
  t.push(0, {5, 50});
  EXPECT_EQ(contents(t[0]), (Pairs{{5, 50}}));
}

TEST(RecordTable, ResetClearsTouchedRowsAndReusesThePool) {
  RecordTable t;
  t.reset(8);
  t[3] = {{1, 1}};
  t[5] = {{2, 2}, {3, 3}};
  EXPECT_FALSE(t.touched_rows().empty());
  t.reset(8);
  for (std::uint32_t v = 0; v < 8; ++v) EXPECT_TRUE(t[v].empty()) << v;
  EXPECT_TRUE(t.touched_rows().empty());
  // Rows written after the reset start fresh.
  t[5] = {{9, 9}};
  EXPECT_EQ(contents(t[5]), (Pairs{{9, 9}}));
}

TEST(RecordTable, ResetResizes) {
  RecordTable t;
  t.reset(2);
  t[1] = {{1, 1}};
  t.reset(5);
  EXPECT_EQ(t.num_rows(), 5u);
  for (std::uint32_t v = 0; v < 5; ++v) EXPECT_TRUE(t[v].empty());
}

TEST(RecordTable, CursorWalksARowAndResetsWithIt) {
  RecordTable t;
  t.reset(2);
  t[0] = {{1, 10}, {2, 20}, {3, 30}};
  EXPECT_EQ(t.cursor(0), RecordTable::kNilSlot);
  t.set_cursor(0, t.head_slot(0));
  std::vector<std::int64_t> seen;
  while (t.cursor(0) != RecordTable::kNilSlot) {
    seen.push_back(t.at_slot(t.cursor(0)).value);
    t.set_cursor(0, t.next_slot(t.cursor(0)));
  }
  EXPECT_EQ(seen, (std::vector<std::int64_t>{10, 20, 30}));
  t.reset(2);
  EXPECT_EQ(t.cursor(0), RecordTable::kNilSlot);
}

TEST(RecordTable, MutableIterationUpdatesInPlace) {
  RecordTable t;
  t.reset(1);
  t[0] = {{1, 1}, {2, 2}};
  for (Record& r : t[0]) r.value *= 10;
  EXPECT_EQ(contents(t[0]), (Pairs{{1, 10}, {2, 20}}));
}

TEST(RecordTable, TouchedRowsCoverEveryNonEmptyRow) {
  RecordTable t;
  t.reset(100);
  t[10] = {{1, 1}};
  t[20] = {{2, 2}};
  t[10].clear();
  t.push(10, {3, 3});
  std::vector<bool> covered(100, false);
  for (const std::uint32_t v : t.touched_rows()) covered[v] = true;
  for (std::uint32_t v = 0; v < 100; ++v) {
    if (!t[v].empty()) {
      EXPECT_TRUE(covered[v]) << v;
    }
  }
}

}  // namespace
}  // namespace cpt::congest
