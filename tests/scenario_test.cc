// Scenario subsystem unit tests: JSON parsing, strict manifest validation
// (unknown keys and misspelled params are errors, malformed JSON reports
// instead of crashing), registry seed derivation (instance + tester
// goldens), golden manifest expansion (same manifest => identical job
// list and seeds), corpus round-trip + hit/miss determinism + corrupt-
// file recovery, the engine's failure reporting and streaming sink, and
// the engine-vs-direct equivalence that pins the migrated E1-E7 benches
// ("measured rounds/messages unchanged for matching instances", including
// the E4/E6 stage1_partition / random_partition workloads).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "apps/cycle_free.h"
#include "congest/network.h"
#include "congest/simulator.h"
#include "core/tester.h"
#include "partition/partition.h"
#include "partition/random_partition.h"
#include "scenario/aggregate.h"
#include "scenario/corpus.h"
#include "scenario/engine.h"
#include "scenario/json.h"
#include "scenario/manifest.h"
#include "scenario/registry.h"

namespace cpt::scenario {
namespace {

// ---- JSON -----------------------------------------------------------------

TEST(Json, ParsesScalarsArraysAndOrderedObjects) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonValue::parse(
      R"({"b": 1, "a": [2.5, "x", true, null], "c": {"n": -3}})", &v, &err))
      << err;
  ASSERT_TRUE(v.is_object());
  // Declaration order is preserved (sweep-axis order depends on it).
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "c");
  EXPECT_TRUE(v.find("b")->is_integer());
  EXPECT_EQ(v.find("b")->as_int64(), 1);
  const JsonValue& arr = *v.find("a");
  ASSERT_EQ(arr.items().size(), 4u);
  EXPECT_FALSE(arr.items()[0].is_integer());
  EXPECT_DOUBLE_EQ(arr.items()[0].as_double(), 2.5);
  EXPECT_EQ(arr.items()[1].as_string(), "x");
  EXPECT_TRUE(arr.items()[2].as_bool());
  EXPECT_TRUE(arr.items()[3].is_null());
  EXPECT_EQ(v.find("c")->find("n")->as_int64(), -3);
}

TEST(Json, RejectsMalformedDocuments) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(JsonValue::parse("{", &v, &err));
  EXPECT_FALSE(JsonValue::parse("[1, 2,]", &v, &err));
  EXPECT_FALSE(JsonValue::parse("{\"a\": 1} trailing", &v, &err));
  EXPECT_FALSE(JsonValue::parse(R"({"a": 1, "a": 2})", &v, &err));
  EXPECT_FALSE(err.empty());
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  JsonValue v;
  std::string err;
  // ASCII, 2-byte (é U+00E9), 3-byte (€ U+20AC), and a surrogate pair
  // (U+1F600) -- each must decode to its exact UTF-8 byte sequence.
  ASSERT_TRUE(JsonValue::parse(R"("\u0041\u00e9\u20AC\ud83d\ude00")", &v,
                               &err))
      << err;
  EXPECT_EQ(v.as_string(),
            "A"
            "\xc3\xa9"
            "\xe2\x82\xac"
            "\xf0\x9f\x98\x80");
  // NUL decodes too (std::string carries it fine).
  ASSERT_TRUE(JsonValue::parse(R"("a\u0000b")", &v, &err)) << err;
  ASSERT_EQ(v.as_string().size(), 3u);
  EXPECT_EQ(v.as_string()[1], '\0');
  // Raw UTF-8 passes through untouched, and the writer escapes only what
  // JSON requires: parse(render(s)) == s for non-ASCII content.
  const std::string original = "caf\xc3\xa9 \xe2\x82\xac" "5";
  std::string rendered;
  json_append_escaped(rendered, original);
  ASSERT_TRUE(JsonValue::parse(rendered, &v, &err)) << err;
  EXPECT_EQ(v.as_string(), original);
}

TEST(Json, LoneAndMismatchedSurrogatesAreLineNumberedErrors) {
  JsonValue v;
  std::string err;
  const char* bad[] = {
      R"("\ud83d")",         // lone high surrogate at end of string
      R"("\ud83d abc")",     // high surrogate followed by plain text
      R"("\ud83d\u0041")",   // high surrogate paired with a non-surrogate
      R"("\ud83d\ud83d")",   // high surrogate paired with another high
      R"("\ude00")",         // lone low surrogate
      R"("\ud8")",           // truncated escape
      R"("\uZZZZ")",         // non-hex digits
  };
  for (const char* doc : bad) {
    EXPECT_FALSE(JsonValue::parse(doc, &v, &err)) << doc;
    EXPECT_NE(err.find("line 1"), std::string::npos) << doc << " -> " << err;
  }
  // The line number tracks the failing escape, not the document start.
  EXPECT_FALSE(JsonValue::parse("[\n1,\n\"\\ud83d\"\n]", &v, &err));
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

// ---- Registry / seeds -----------------------------------------------------

TEST(Registry, EveryFamilyBuildsAGraph) {
  for (const FamilyInfo& family : scenario_families()) {
    if (std::string_view(family.name) == "file") continue;  // needs a path
    const ScenarioInstance inst =
        resolve_scenario(family.name, ScenarioParams{}, /*base_seed=*/3,
                         /*index=*/0);
    const Graph g = build_instance(inst);
    EXPECT_GT(g.num_nodes(), 0u) << family.name;
  }
}

TEST(Registry, SeedDerivationIsStableAndSeparates) {
  ScenarioParams p1;
  p1.set_int("rows", 12);
  p1.set_int("cols", 12);
  // Declaration order must not matter (canonical signature sorts keys).
  ScenarioParams p2;
  p2.set_int("cols", 12);
  p2.set_int("rows", 12);
  EXPECT_EQ(p1.signature(), "cols=12,rows=12");
  EXPECT_EQ(derive_instance_seed("grid", p1, 7, 0),
            derive_instance_seed("grid", p2, 7, 0));
  // Golden value: pins the documented splitmix64 chain. If this changes,
  // every recorded corpus hash and manifest expansion changes with it.
  EXPECT_EQ(derive_instance_seed("grid", p1, 7, 0), 0x4b58ff6823165966ULL);
  // Any input perturbation separates.
  EXPECT_NE(derive_instance_seed("grid", p1, 7, 0),
            derive_instance_seed("grid", p1, 7, 1));
  EXPECT_NE(derive_instance_seed("grid", p1, 7, 0),
            derive_instance_seed("grid", p1, 8, 0));
  EXPECT_NE(derive_instance_seed("grid", p1, 7, 0),
            derive_instance_seed("triangulated_grid", p1, 7, 0));
  ScenarioParams p3 = p1;
  p3.set_int("rows", 13);
  EXPECT_NE(derive_instance_seed("grid", p1, 7, 0),
            derive_instance_seed("grid", p3, 7, 0));
}

TEST(Registry, TesterSeedGoldensAndSeparation) {
  // Goldens pin the documented splitmix64 chain over (instance seed,
  // trial): changing it re-seeds every recorded sweep. The instance-seed
  // input is itself the Registry golden above.
  EXPECT_EQ(derive_tester_seed(0x4b58ff6823165966ULL, 0),
            0xdc2a92a9d6d42bfbULL);
  EXPECT_EQ(derive_tester_seed(0x4b58ff6823165966ULL, 1),
            0x652556b7eb3e976eULL);
  EXPECT_EQ(derive_tester_seed(0, 0), 0x6b3ee4aaf64a4963ULL);
  // Trials and instances separate, and the tester chain is domain-
  // separated from the instance chain.
  EXPECT_NE(derive_tester_seed(7, 0), derive_tester_seed(7, 1));
  EXPECT_NE(derive_tester_seed(7, 0), derive_tester_seed(8, 0));
  ScenarioParams none;
  EXPECT_NE(derive_tester_seed(7, 0), derive_instance_seed("grid", none, 7, 0));
}

TEST(Registry, PlanarFamilyFlagsMatchTheGenerators) {
  // The one-sidedness invariant trusts these flags; spot-check both sides.
  for (const char* name : {"path", "cycle", "star", "grid",
                           "triangulated_grid", "binary_tree", "random_tree",
                           "outerplanar", "apollonian", "random_planar",
                           "wheel", "caterpillar"}) {
    EXPECT_TRUE(find_family(name)->planar) << name;
  }
  for (const char* name : {"complete", "complete_bipartite", "hypercube",
                           "gnp", "gnm", "random_regular", "toroidal_grid",
                           "k5_blobs", "file"}) {
    EXPECT_FALSE(find_family(name)->planar) << name;
  }
}

TEST(Registry, BuildInstanceIsDeterministic) {
  ScenarioParams params;
  params.set_int("n", 120);
  const ScenarioInstance inst =
      resolve_scenario("apollonian", params, 11, 2);
  const Graph a = build_instance(inst);
  const Graph b = build_instance(inst);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.endpoints(e).u, b.endpoints(e).u);
    EXPECT_EQ(a.endpoints(e).v, b.endpoints(e).v);
  }
}

TEST(Registry, PerturbationsChangeTheGraphDeterministically) {
  ScenarioParams params;
  params.set_int("rows", 8);
  params.set_int("cols", 8);
  ScenarioInstance inst = resolve_scenario("grid", params, 5, 0);
  const Graph base = build_instance(inst);
  inst.perturb = "k5_blobs";
  inst.perturb_params.set_int("count", 3);
  const Graph blobs = build_instance(inst);
  EXPECT_EQ(blobs.num_nodes(), base.num_nodes() + 3 * 5);
  EXPECT_EQ(blobs.num_edges(), base.num_edges() + 3 * (10 + 1));
  inst.perturb = "k33_blobs";
  const Graph k33 = build_instance(inst);
  EXPECT_EQ(k33.num_nodes(), base.num_nodes() + 3 * 6);
  EXPECT_EQ(k33.num_edges(), base.num_edges() + 3 * (9 + 1));
  inst.perturb = "disjoint_copies";
  inst.perturb_params = ScenarioParams{};
  inst.perturb_params.set_int("copies", 4);
  const Graph copies = build_instance(inst);
  EXPECT_EQ(copies.num_nodes(), 4 * base.num_nodes());
  EXPECT_EQ(copies.num_edges(), 4 * base.num_edges());
}

TEST(Registry, PresetsResolveToFamilies) {
  ScenarioParams params;
  params.set_int("flyovers", 25);
  const ScenarioInstance road =
      resolve_scenario("road_network", params, 2024, 0);
  EXPECT_EQ(road.family, "grid");
  EXPECT_EQ(road.perturb, "plus_random_edges");
  EXPECT_EQ(road.perturb_params.get_int("extra", -1), 25);
  const Graph g = build_instance(road);
  EXPECT_EQ(g.num_nodes(), 40u * 40u);
  EXPECT_EQ(g.num_edges(), 2u * 40u * 39u + 25u);

  const ScenarioInstance overlay =
      resolve_scenario("overlay_backbone", ScenarioParams{}, 77, 0);
  EXPECT_EQ(overlay.family, "random_planar");
  EXPECT_EQ(overlay.perturb, "plus_random_edges");
}

// ---- Manifest expansion ---------------------------------------------------

constexpr const char* kSmallManifest = R"({
  "name": "golden",
  "base_seed": 7,
  "defaults": {"trials": 2, "epsilon": 0.15, "tester": ["planarity", "cycle_free"]},
  "cells": [
    {"scenario": "grid", "params": {"rows": [12, 16], "cols": 12}},
    {"scenario": "cycle", "params": {"n": 30},
     "perturb": {"kind": "k33_blobs", "count": [2, 4]},
     "tester": "planarity", "trials": 1, "instances": 2}
  ]
})";

TEST(Manifest, GoldenExpansion) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(parse_manifest(kSmallManifest, &m, &err)) << err;
  EXPECT_EQ(m.name, "golden");
  EXPECT_EQ(m.base_seed, 7u);
  ASSERT_EQ(m.cells.size(), 2u);

  const std::vector<Job> jobs = expand_manifest(m);
  // Cell 0: 2 rows-values x 2 testers x 2 trials = 8.
  // Cell 1: 2 count-values x 2 instances x 1 trial = 4.
  ASSERT_EQ(jobs.size(), 12u);

  // Axis order: rows axis outermost, then tester, then trial.
  EXPECT_EQ(jobs[0].instance.label(), "grid(cols=12,rows=12)");
  EXPECT_EQ(jobs[0].tester, TesterKind::kPlanarity);
  EXPECT_EQ(jobs[0].trial, 0u);
  EXPECT_EQ(jobs[1].trial, 1u);
  EXPECT_EQ(jobs[2].tester, TesterKind::kCycleFree);
  EXPECT_EQ(jobs[4].instance.label(), "grid(cols=12,rows=16)");
  // Golden instance seed (same derivation chain as Registry golden).
  EXPECT_EQ(jobs[0].instance.seed, 0x4b58ff6823165966ULL);
  // All four grid(rows=12) jobs share one instance; seeds match.
  EXPECT_EQ(jobs[0].instance.hash(), jobs[2].instance.hash());
  EXPECT_NE(jobs[0].instance.hash(), jobs[4].instance.hash());
  // Trials vary the tester seed, not the instance.
  EXPECT_NE(jobs[0].tester_seed, jobs[1].tester_seed);
  EXPECT_EQ(jobs[0].tester_seed, derive_tester_seed(jobs[0].instance.seed, 0));

  // Perturbed cell: the seed covers the base family only, so the count
  // axis sweeps noise on a fixed base graph (same seed, different label /
  // hash); the instance index still separates sibling graphs.
  EXPECT_EQ(jobs[8].instance.label(), "cycle(n=30)+k33_blobs(count=2)");
  EXPECT_EQ(jobs[8].instance_index, 0u);
  EXPECT_EQ(jobs[9].instance_index, 1u);
  EXPECT_NE(jobs[8].instance.seed, jobs[9].instance.seed);
  EXPECT_EQ(jobs[10].instance.label(), "cycle(n=30)+k33_blobs(count=4)");
  EXPECT_EQ(jobs[8].instance.seed, jobs[10].instance.seed);
  EXPECT_NE(jobs[8].instance.hash(), jobs[10].instance.hash());
  // A count=4 blob graph extends the count=2 one: shared Rng, nested
  // noise (edge ids renumber -- the builder normalizes -- but every
  // count=2 edge is present in the count=4 graph).
  const Graph two = build_instance(jobs[8].instance);
  const Graph four = build_instance(jobs[10].instance);
  EXPECT_EQ(four.num_nodes(), two.num_nodes() + 2 * 6);
  EXPECT_EQ(four.num_edges(), two.num_edges() + 2 * 10);
  for (EdgeId e = 0; e < two.num_edges(); ++e) {
    EXPECT_TRUE(four.has_edge(two.endpoints(e).u, two.endpoints(e).v));
  }

  // Same manifest => bit-identical job list (the reproducibility contract).
  const std::vector<Job> again = expand_manifest(m);
  ASSERT_EQ(again.size(), jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(again[j].cell_key(), jobs[j].cell_key());
    EXPECT_EQ(again[j].instance.seed, jobs[j].instance.seed);
    EXPECT_EQ(again[j].tester_seed, jobs[j].tester_seed);
    EXPECT_EQ(again[j].instance.hash(), jobs[j].instance.hash());
  }
}

TEST(Manifest, RejectsUnknownAndMisspelledKeys) {
  Manifest m;
  std::string err;
  // Top-level typo.
  err.clear();
  EXPECT_FALSE(parse_manifest(
      R"({"base_sead": 3, "cells": [{"scenario": "grid"}]})", &m, &err));
  EXPECT_NE(err.find("base_sead"), std::string::npos) << err;
  // defaults typo.
  err.clear();
  EXPECT_FALSE(parse_manifest(
      R"({"defaults": {"trails": 2}, "cells": [{"scenario": "grid"}]})", &m,
      &err));
  EXPECT_NE(err.find("trails"), std::string::npos) << err;
  // Cell-level typo.
  err.clear();
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "grid", "epsilom": 0.2}]})", &m, &err));
  EXPECT_NE(err.find("epsilom"), std::string::npos) << err;
  // Family param typo (would silently sweep the default otherwise).
  err.clear();
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "grid", "params": {"rows": 8, "colz": 8}}]})",
      &m, &err));
  EXPECT_NE(err.find("colz"), std::string::npos) << err;
  EXPECT_NE(err.find("rows,cols"), std::string::npos) << err;
  // Param from a different family.
  err.clear();
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "apollonian", "params": {"rows": 8}}]})", &m,
      &err));
  EXPECT_NE(err.find("rows"), std::string::npos) << err;
  // Perturbation param typo.
  err.clear();
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "grid",
                     "perturb": {"kind": "plus_random_edges", "extras": 9}}]})",
      &m, &err));
  EXPECT_NE(err.find("extras"), std::string::npos) << err;
  // Preset params validate against the preset's own keys.
  err.clear();
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "road_network", "params": {"flyover": 9}}]})",
      &m, &err));
  EXPECT_NE(err.find("flyover"), std::string::npos) << err;
  // The full accepted key set still parses.
  err.clear();
  EXPECT_TRUE(parse_manifest(
      R"({"name": "ok", "base_seed": 2,
          "defaults": {"epsilon": 0.2, "tester": "planarity", "instances": 1,
                       "trials": 1, "sim_threads": 1, "adaptive": false,
                       "randomized": false, "pipelined": true, "delta": 0.1,
                       "alpha": 3},
          "cells": [{"scenario": "grid", "params": {"rows": 6, "cols": 6}}]})",
      &m, &err))
      << err;
}

TEST(Manifest, MalformedJsonReportsErrorsNotCrashes) {
  Manifest m;
  std::string err;
  // Truncated document.
  err.clear();
  EXPECT_FALSE(parse_manifest(R"({"name": "x", "cells": [)", &m, &err));
  EXPECT_FALSE(err.empty());
  // Truncated mid-string.
  err.clear();
  EXPECT_FALSE(parse_manifest(R"({"name": "unterminat)", &m, &err));
  EXPECT_FALSE(err.empty());
  // Wrong types: cells as object, epsilon as string, trials fractional,
  // negative base_seed, sim_threads out of range.
  err.clear();
  EXPECT_FALSE(parse_manifest(R"({"cells": {"scenario": "grid"}})", &m, &err));
  EXPECT_NE(err.find("cells"), std::string::npos) << err;
  err.clear();
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "grid", "epsilon": "big"}]})", &m, &err));
  EXPECT_NE(err.find("epsilon"), std::string::npos) << err;
  err.clear();
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "grid", "trials": 2.5}]})", &m, &err));
  EXPECT_NE(err.find("trials"), std::string::npos) << err;
  err.clear();
  EXPECT_FALSE(parse_manifest(R"({"base_seed": -4, "cells": [{"scenario":
      "grid"}]})", &m, &err));
  EXPECT_NE(err.find("base_seed"), std::string::npos) << err;
  err.clear();
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "grid", "sim_threads": 99}]})", &m, &err));
  EXPECT_NE(err.find("sim_threads"), std::string::npos) << err;
}

TEST(Manifest, RejectsUnknownNamesAndBadFields) {
  Manifest m;
  std::string err;
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "not_a_family"}]})", &m, &err));
  EXPECT_NE(err.find("unknown scenario"), std::string::npos);
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "grid", "tester": "nope"}]})", &m, &err));
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "grid", "perturb": {"kind": "nope"}}]})", &m,
      &err));
  EXPECT_FALSE(parse_manifest(R"({"cells": []})", &m, &err));
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "grid", "params": {"rows": []}}]})", &m,
      &err));
  // Presets fix their own perturbation.
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "road_network",
                     "perturb": {"kind": "k5_blobs"}}]})",
      &m, &err));
}

// ---- Corpus ---------------------------------------------------------------

TEST(Corpus, RoundTripsGraphsBitForBit) {
  const std::string dir = testing::TempDir() + "cpt_corpus_rt";
  const CorpusStore store(dir);
  ScenarioParams params;
  params.set_int("n", 90);
  const ScenarioInstance inst = resolve_scenario("random_planar", params, 9, 1);
  const Graph g = build_instance(inst);
  ASSERT_TRUE(store.save(inst.hash(), g));
  Graph loaded;
  ASSERT_EQ(store.load(inst.hash(), &loaded), CorpusStore::LoadStatus::kHit);
  ASSERT_EQ(loaded.num_nodes(), g.num_nodes());
  ASSERT_EQ(loaded.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(loaded.endpoints(e).u, g.endpoints(e).u);
    EXPECT_EQ(loaded.endpoints(e).v, g.endpoints(e).v);
  }
  Graph missing;
  EXPECT_EQ(store.load(inst.hash() + 1, &missing),
            CorpusStore::LoadStatus::kMiss);
}

TEST(Corpus, BatchHitMissCountsAreDeterministic) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(parse_manifest(kSmallManifest, &m, &err)) << err;
  // A fresh directory per run: the first batch must see an empty cache.
  std::string dir_template = testing::TempDir() + "cpt_corpus_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template.data()), nullptr);

  BatchOptions opt;
  opt.threads = 2;
  opt.corpus_dir = dir_template;
  const BatchResult first = run_batch(m, opt);
  // 2 grid instances + 4 perturbed cycle instances (2 counts x 2 indices).
  EXPECT_EQ(first.corpus.unique_instances, 6u);
  EXPECT_EQ(first.corpus.generated, 6u);
  EXPECT_EQ(first.corpus.disk_hits, 0u);

  const BatchResult second = run_batch(m, opt);
  EXPECT_EQ(second.corpus.unique_instances, 6u);
  EXPECT_EQ(second.corpus.generated, 0u);
  EXPECT_EQ(second.corpus.disk_hits, 6u);

  // Cached and regenerated instances are interchangeable: identical
  // aggregates.
  const auto cells1 = aggregate_cells(first);
  const auto cells2 = aggregate_cells(second);
  EXPECT_EQ(render_aggregate_json(m, first, cells1),
            render_aggregate_json(m, second, cells2));
}

// Flips one byte at `offset` in an existing file.
void garble_file(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0x5a, f);
  std::fclose(f);
}

TEST(Corpus, DetectsCorruptFilesAndRecovers) {
  std::string dir_template = testing::TempDir() + "cpt_corrupt_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template.data()), nullptr);
  const CorpusStore store(dir_template);
  ScenarioParams params;
  params.set_int("n", 80);
  const ScenarioInstance inst = resolve_scenario("random_planar", params, 4, 0);
  const Graph g = build_instance(inst);
  ASSERT_TRUE(store.save(inst.hash(), g));
  const std::string path = store.path_for(inst.hash());

  Graph out;
  // Truncated: keep only the first 10 bytes.
  {
    std::string bytes;
    ASSERT_TRUE(read_text_file(path, &bytes));
    ASSERT_TRUE(write_text_file(path, bytes.substr(0, 10)));
    EXPECT_EQ(store.load(inst.hash(), &out), CorpusStore::LoadStatus::kCorrupt);
    ASSERT_TRUE(store.save(inst.hash(), g));
  }
  // Garbled edge-count byte (v3 header m field at [16, 24)): the header
  // checksum catches it before any size math runs.
  garble_file(path, 16 + 2);
  EXPECT_EQ(store.load(inst.hash(), &out), CorpusStore::LoadStatus::kCorrupt);
  ASSERT_TRUE(store.save(inst.hash(), g));
  // Garbled node-count byte (v3 header n field at [8, 16)): same.
  garble_file(path, 8 + 3);
  EXPECT_EQ(store.load(inst.hash(), &out), CorpusStore::LoadStatus::kCorrupt);
  ASSERT_TRUE(store.save(inst.hash(), g));
  // Trailing junk.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputc('x', f);
    std::fclose(f);
    EXPECT_EQ(store.load(inst.hash(), &out), CorpusStore::LoadStatus::kCorrupt);
    ASSERT_TRUE(store.save(inst.hash(), g));
  }
  // Pristine again after the re-saves.
  EXPECT_EQ(store.load(inst.hash(), &out), CorpusStore::LoadStatus::kHit);
}

TEST(Corpus, EngineRegeneratesCorruptEntriesBitIdentically) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(parse_manifest(kSmallManifest, &m, &err)) << err;
  std::string dir_template = testing::TempDir() + "cpt_regen_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template.data()), nullptr);

  BatchOptions opt;
  opt.threads = 2;
  opt.corpus_dir = dir_template;
  const BatchResult clean = run_batch(m, opt);
  ASSERT_EQ(clean.corpus.generated, 6u);
  EXPECT_EQ(clean.corpus.corrupt_files, 0u);

  // Damage one cached instance: the next run must warn, regenerate and
  // produce the identical aggregate -- and leave a repaired file behind.
  const CorpusStore store(dir_template);
  const std::uint64_t victim = clean.jobs[0].instance.hash();
  const std::string path = store.path_for(victim);
  garble_file(path, 16 + 5);

  const BatchResult recovered = run_batch(m, opt);
  EXPECT_EQ(recovered.corpus.disk_hits, 5u);
  EXPECT_EQ(recovered.corpus.generated, 1u);
  EXPECT_EQ(recovered.corpus.corrupt_files, 1u);
  EXPECT_EQ(render_aggregate_json(m, clean, aggregate_cells(clean)),
            render_aggregate_json(m, recovered, aggregate_cells(recovered)));
  Graph repaired;
  EXPECT_EQ(store.load(victim, &repaired), CorpusStore::LoadStatus::kHit);
}

// ---- Engine ---------------------------------------------------------------

TEST(Engine, MatchesDirectTesterCalls) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(parse_manifest(kSmallManifest, &m, &err)) << err;
  const std::vector<Job> jobs = expand_manifest(m);
  // Planarity job == direct test_planarity with the same options.
  const Job& pj = jobs[0];
  const Graph pg = build_instance(pj.instance);
  const JobResult via_engine = run_job(pj, pg);
  TesterOptions topt;
  topt.epsilon = pj.epsilon;
  topt.seed = pj.tester_seed;
  topt.num_threads = pj.sim_threads;
  topt.stage1.adaptive = pj.adaptive;
  const TesterResult direct = test_planarity(pg, topt);
  EXPECT_EQ(via_engine.verdict, direct.verdict);
  EXPECT_EQ(via_engine.rounds, direct.ledger.total_rounds());
  EXPECT_EQ(via_engine.messages, direct.ledger.total_messages());

  // Cycle-freeness job == direct test_cycle_freeness.
  const Job& cj = jobs[2];
  ASSERT_EQ(cj.tester, TesterKind::kCycleFree);
  const Graph cg = build_instance(cj.instance);
  const JobResult ce = run_job(cj, cg);
  MinorFreeOptions mopt;
  mopt.epsilon = cj.epsilon;
  mopt.alpha = cj.alpha;
  mopt.randomized = cj.randomized;
  mopt.delta = cj.delta;
  mopt.seed = cj.tester_seed;
  mopt.adaptive_phases = cj.adaptive;
  mopt.num_threads = cj.sim_threads;
  const AppResult cd = test_cycle_freeness(cg, mopt);
  EXPECT_EQ(ce.verdict, cd.verdict);
  EXPECT_EQ(ce.rounds, cd.ledger.total_rounds());
  EXPECT_EQ(ce.messages, cd.ledger.total_messages());
}

// The E4/E6 migration contract: a "stage1_partition" / "random_partition"
// job reports exactly what a direct run_stage1 / run_random_partition call
// (same options, same seed) measures.
TEST(Engine, MatchesDirectPartitionCalls) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(parse_manifest(
      R"({"name": "parts", "base_seed": 6,
          "cells": [
            {"scenario": "triangulated_grid", "params": {"rows": 12, "cols": 12},
             "epsilon": 0.3, "tester": ["stage1_partition", "random_partition"],
             "delta": 0.25}
          ]})",
      &m, &err))
      << err;
  const std::vector<Job> jobs = expand_manifest(m);
  ASSERT_EQ(jobs.size(), 2u);
  ASSERT_EQ(jobs[0].tester, TesterKind::kStage1Partition);
  ASSERT_EQ(jobs[1].tester, TesterKind::kRandomPartition);
  const Graph g = build_instance(jobs[0].instance);

  {
    const JobResult via_engine = run_job(jobs[0], g);
    congest::Network net(g);
    congest::Simulator sim(net);
    congest::RoundLedger ledger;
    Stage1Options opt;
    opt.epsilon = jobs[0].epsilon;
    const Stage1Result direct = run_stage1(sim, g, opt, ledger);
    EXPECT_EQ(via_engine.rounds, ledger.total_rounds());
    EXPECT_EQ(via_engine.messages, ledger.total_messages());
    EXPECT_EQ(via_engine.stage1_phases, direct.phases_emulated);
    EXPECT_EQ(via_engine.stage1_phases_total, direct.phases_total);
    ASSERT_EQ(via_engine.phase_stats.size(), direct.phase_stats.size());
    for (std::size_t i = 0; i < direct.phase_stats.size(); ++i) {
      EXPECT_EQ(via_engine.phase_stats[i].cut_after,
                direct.phase_stats[i].cut_after);
      EXPECT_EQ(via_engine.phase_stats[i].rounds, direct.phase_stats[i].rounds);
    }
    const PartitionStats stats = measure_partition(g, direct.forest);
    EXPECT_EQ(via_engine.num_parts, stats.num_parts);
    EXPECT_EQ(via_engine.cut_edges, stats.cut_edges);
    EXPECT_EQ(via_engine.max_part_ecc, stats.max_part_ecc);
    EXPECT_EQ(via_engine.max_tree_depth, stats.max_tree_depth);
  }
  {
    const JobResult via_engine = run_job(jobs[1], g);
    congest::Network net(g);
    congest::Simulator sim(net);
    congest::RoundLedger ledger;
    RandomPartitionOptions opt;
    opt.epsilon = jobs[1].epsilon;
    opt.delta = jobs[1].delta;
    opt.seed = jobs[1].tester_seed;
    const RandomPartitionResult direct =
        run_random_partition(sim, g, opt, ledger);
    EXPECT_EQ(via_engine.rounds, ledger.total_rounds());
    EXPECT_EQ(via_engine.messages, ledger.total_messages());
    EXPECT_EQ(via_engine.trials_per_phase, direct.trials_per_phase);
    const PartitionStats stats = measure_partition(g, direct.forest);
    EXPECT_EQ(via_engine.num_parts, stats.num_parts);
    EXPECT_EQ(via_engine.cut_edges, stats.cut_edges);
  }
}

TEST(Engine, FailedJobsAreReportedNotSilentlyAggregated) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(parse_manifest(
      R"({"name": "partial", "base_seed": 1, "defaults": {"trials": 2},
          "cells": [
            {"scenario": "grid", "params": {"rows": 6, "cols": 6}},
            {"scenario": "file",
             "params": {"path": "/nonexistent/cpt_no_such_file.el"}}
          ]})",
      &m, &err))
      << err;
  BatchOptions opt;
  opt.threads = 2;
  const BatchResult batch = run_batch(m, opt);
  ASSERT_EQ(batch.jobs.size(), 4u);
  EXPECT_EQ(batch.failed_jobs, 2u);
  for (std::size_t j = 0; j < batch.jobs.size(); ++j) {
    if (batch.jobs[j].instance.family == "file") {
      EXPECT_TRUE(batch.results[j].failed);
      EXPECT_NE(batch.results[j].error.find("cannot open"), std::string::npos)
          << batch.results[j].error;
    } else {
      EXPECT_FALSE(batch.results[j].failed);
    }
  }
  // Failed jobs contribute to no cell, and the aggregate says so.
  const std::vector<CellAggregate> cells = aggregate_cells(batch);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].jobs, 2u);
  const std::string json = render_aggregate_json(m, batch, cells);
  EXPECT_NE(json.find("\"failed_jobs\": 2"), std::string::npos) << json;
}

TEST(Engine, MalformedFileScenarioFailsTheJobNotTheProcess) {
  // A file that exists but is not an edge list must become a per-job
  // failure (and a nonzero cpt_batch exit), never a contract abort or a
  // silently empty graph.
  const std::string path = testing::TempDir() + "cpt_garbled.el";
  ASSERT_TRUE(write_text_file(path, "this is not an edge list\n"));
  Manifest m;
  std::string err;
  ASSERT_TRUE(parse_manifest(
      R"({"name": "garbled", "cells": [{"scenario": "file",
          "params": {"path": ")" +
          path + R"("}}]})",
      &m, &err))
      << err;
  const BatchResult batch = run_batch(m, BatchOptions{});
  ASSERT_EQ(batch.jobs.size(), 1u);
  EXPECT_EQ(batch.failed_jobs, 1u);
  EXPECT_TRUE(batch.results[0].failed);
  EXPECT_NE(batch.results[0].error.find("bad header"), std::string::npos)
      << batch.results[0].error;
  EXPECT_TRUE(aggregate_cells(batch).empty());

  // Rows that parse but violate graph preconditions (out-of-range
  // endpoint, self-loop) are job failures too, not GraphBuilder aborts.
  const std::string oob = testing::TempDir() + "cpt_oob.el";
  ASSERT_TRUE(write_text_file(oob, "2 1\n0 5\n"));
  Manifest m2;
  ASSERT_TRUE(parse_manifest(
      R"({"name": "oob", "cells": [{"scenario": "file",
          "params": {"path": ")" +
          oob + R"("}}]})",
      &m2, &err))
      << err;
  const BatchResult oob_batch = run_batch(m2, BatchOptions{});
  ASSERT_EQ(oob_batch.failed_jobs, 1u);
  EXPECT_NE(oob_batch.results[0].error.find("out of range"),
            std::string::npos)
      << oob_batch.results[0].error;
}

TEST(Engine, StreamingSinkSeesJobOrderWithoutRetainedResults) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(parse_manifest(kSmallManifest, &m, &err)) << err;
  BatchOptions opt;
  opt.threads = 4;
  std::vector<std::uint32_t> order;
  StreamStats stats;
  const BatchResult batch = run_batch(
      m, opt,
      [&](const Job& job, const JobResult& result) {
        EXPECT_FALSE(result.failed);
        order.push_back(job.job_index);
      },
      &stats);
  // The sink saw every job exactly once, in expansion order, and the
  // batch retained nothing per-job.
  ASSERT_EQ(order.size(), batch.jobs.size());
  for (std::uint32_t j = 0; j < order.size(); ++j) EXPECT_EQ(order[j], j);
  EXPECT_TRUE(batch.results.empty());
  // The reorder window is the only per-job result storage.
  EXPECT_LE(stats.peak_pending_results, 4u * 4u + 4u);
}

TEST(Engine, AggregateJsonIsThreadCountInvariant) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(parse_manifest(kSmallManifest, &m, &err)) << err;
  BatchOptions serial;
  serial.threads = 1;
  BatchOptions parallel;
  parallel.threads = 4;
  const BatchResult a = run_batch(m, serial);
  const BatchResult b = run_batch(m, parallel);
  EXPECT_EQ(b.threads_used, 4u);
  // Per-job seeds are a function of the expansion alone: the batch thread
  // count must never reach into the seed chain.
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].instance.seed, b.jobs[j].instance.seed);
    EXPECT_EQ(a.jobs[j].tester_seed, b.jobs[j].tester_seed);
  }
  const std::string ja = render_aggregate_json(m, a, aggregate_cells(a));
  const std::string jb = render_aggregate_json(m, b, aggregate_cells(b));
  EXPECT_EQ(ja, jb);
  EXPECT_EQ(render_aggregate_csv(aggregate_cells(a)),
            render_aggregate_csv(aggregate_cells(b)));
}

TEST(Aggregate, QuantilesAreNearestRank) {
  const QuantileSummary q = summarize({5, 1, 3, 2, 4});
  EXPECT_EQ(q.min, 1u);
  EXPECT_EQ(q.p25, 2u);
  EXPECT_EQ(q.p50, 3u);
  EXPECT_EQ(q.p75, 4u);
  EXPECT_EQ(q.max, 5u);
  const QuantileSummary single = summarize({42});
  EXPECT_EQ(single.min, 42u);
  EXPECT_EQ(single.p50, 42u);
  EXPECT_EQ(single.max, 42u);
}

}  // namespace
}  // namespace cpt::scenario
