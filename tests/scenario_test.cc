// Scenario subsystem unit tests: JSON parsing, registry seed derivation,
// golden manifest expansion (same manifest => identical job list and
// instance seeds), corpus round-trip + hit/miss determinism, and the
// engine-vs-direct equivalence that pins the migrated E1/E3/E7 benches
// ("measured rounds/messages unchanged for matching instances").
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "apps/cycle_free.h"
#include "core/tester.h"
#include "scenario/aggregate.h"
#include "scenario/corpus.h"
#include "scenario/engine.h"
#include "scenario/json.h"
#include "scenario/manifest.h"
#include "scenario/registry.h"

namespace cpt::scenario {
namespace {

// ---- JSON -----------------------------------------------------------------

TEST(Json, ParsesScalarsArraysAndOrderedObjects) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonValue::parse(
      R"({"b": 1, "a": [2.5, "x", true, null], "c": {"n": -3}})", &v, &err))
      << err;
  ASSERT_TRUE(v.is_object());
  // Declaration order is preserved (sweep-axis order depends on it).
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "c");
  EXPECT_TRUE(v.find("b")->is_integer());
  EXPECT_EQ(v.find("b")->as_int64(), 1);
  const JsonValue& arr = *v.find("a");
  ASSERT_EQ(arr.items().size(), 4u);
  EXPECT_FALSE(arr.items()[0].is_integer());
  EXPECT_DOUBLE_EQ(arr.items()[0].as_double(), 2.5);
  EXPECT_EQ(arr.items()[1].as_string(), "x");
  EXPECT_TRUE(arr.items()[2].as_bool());
  EXPECT_TRUE(arr.items()[3].is_null());
  EXPECT_EQ(v.find("c")->find("n")->as_int64(), -3);
}

TEST(Json, RejectsMalformedDocuments) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(JsonValue::parse("{", &v, &err));
  EXPECT_FALSE(JsonValue::parse("[1, 2,]", &v, &err));
  EXPECT_FALSE(JsonValue::parse("{\"a\": 1} trailing", &v, &err));
  EXPECT_FALSE(JsonValue::parse(R"({"a": 1, "a": 2})", &v, &err));
  EXPECT_FALSE(err.empty());
}

// ---- Registry / seeds -----------------------------------------------------

TEST(Registry, EveryFamilyBuildsAGraph) {
  for (const FamilyInfo& family : scenario_families()) {
    if (std::string_view(family.name) == "file") continue;  // needs a path
    const ScenarioInstance inst =
        resolve_scenario(family.name, ScenarioParams{}, /*base_seed=*/3,
                         /*index=*/0);
    const Graph g = build_instance(inst);
    EXPECT_GT(g.num_nodes(), 0u) << family.name;
  }
}

TEST(Registry, SeedDerivationIsStableAndSeparates) {
  ScenarioParams p1;
  p1.set_int("rows", 12);
  p1.set_int("cols", 12);
  // Declaration order must not matter (canonical signature sorts keys).
  ScenarioParams p2;
  p2.set_int("cols", 12);
  p2.set_int("rows", 12);
  EXPECT_EQ(p1.signature(), "cols=12,rows=12");
  EXPECT_EQ(derive_instance_seed("grid", p1, 7, 0),
            derive_instance_seed("grid", p2, 7, 0));
  // Golden value: pins the documented splitmix64 chain. If this changes,
  // every recorded corpus hash and manifest expansion changes with it.
  EXPECT_EQ(derive_instance_seed("grid", p1, 7, 0), 0x4b58ff6823165966ULL);
  // Any input perturbation separates.
  EXPECT_NE(derive_instance_seed("grid", p1, 7, 0),
            derive_instance_seed("grid", p1, 7, 1));
  EXPECT_NE(derive_instance_seed("grid", p1, 7, 0),
            derive_instance_seed("grid", p1, 8, 0));
  EXPECT_NE(derive_instance_seed("grid", p1, 7, 0),
            derive_instance_seed("triangulated_grid", p1, 7, 0));
  ScenarioParams p3 = p1;
  p3.set_int("rows", 13);
  EXPECT_NE(derive_instance_seed("grid", p1, 7, 0),
            derive_instance_seed("grid", p3, 7, 0));
}

TEST(Registry, BuildInstanceIsDeterministic) {
  ScenarioParams params;
  params.set_int("n", 120);
  const ScenarioInstance inst =
      resolve_scenario("apollonian", params, 11, 2);
  const Graph a = build_instance(inst);
  const Graph b = build_instance(inst);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.endpoints(e).u, b.endpoints(e).u);
    EXPECT_EQ(a.endpoints(e).v, b.endpoints(e).v);
  }
}

TEST(Registry, PerturbationsChangeTheGraphDeterministically) {
  ScenarioParams params;
  params.set_int("rows", 8);
  params.set_int("cols", 8);
  ScenarioInstance inst = resolve_scenario("grid", params, 5, 0);
  const Graph base = build_instance(inst);
  inst.perturb = "k5_blobs";
  inst.perturb_params.set_int("count", 3);
  const Graph blobs = build_instance(inst);
  EXPECT_EQ(blobs.num_nodes(), base.num_nodes() + 3 * 5);
  EXPECT_EQ(blobs.num_edges(), base.num_edges() + 3 * (10 + 1));
  inst.perturb = "k33_blobs";
  const Graph k33 = build_instance(inst);
  EXPECT_EQ(k33.num_nodes(), base.num_nodes() + 3 * 6);
  EXPECT_EQ(k33.num_edges(), base.num_edges() + 3 * (9 + 1));
  inst.perturb = "disjoint_copies";
  inst.perturb_params = ScenarioParams{};
  inst.perturb_params.set_int("copies", 4);
  const Graph copies = build_instance(inst);
  EXPECT_EQ(copies.num_nodes(), 4 * base.num_nodes());
  EXPECT_EQ(copies.num_edges(), 4 * base.num_edges());
}

TEST(Registry, PresetsResolveToFamilies) {
  ScenarioParams params;
  params.set_int("flyovers", 25);
  const ScenarioInstance road =
      resolve_scenario("road_network", params, 2024, 0);
  EXPECT_EQ(road.family, "grid");
  EXPECT_EQ(road.perturb, "plus_random_edges");
  EXPECT_EQ(road.perturb_params.get_int("extra", -1), 25);
  const Graph g = build_instance(road);
  EXPECT_EQ(g.num_nodes(), 40u * 40u);
  EXPECT_EQ(g.num_edges(), 2u * 40u * 39u + 25u);

  const ScenarioInstance overlay =
      resolve_scenario("overlay_backbone", ScenarioParams{}, 77, 0);
  EXPECT_EQ(overlay.family, "random_planar");
  EXPECT_EQ(overlay.perturb, "plus_random_edges");
}

// ---- Manifest expansion ---------------------------------------------------

constexpr const char* kSmallManifest = R"({
  "name": "golden",
  "base_seed": 7,
  "defaults": {"trials": 2, "epsilon": 0.15, "tester": ["planarity", "cycle_free"]},
  "cells": [
    {"scenario": "grid", "params": {"rows": [12, 16], "cols": 12}},
    {"scenario": "cycle", "params": {"n": 30},
     "perturb": {"kind": "k33_blobs", "count": [2, 4]},
     "tester": "planarity", "trials": 1, "instances": 2}
  ]
})";

TEST(Manifest, GoldenExpansion) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(parse_manifest(kSmallManifest, &m, &err)) << err;
  EXPECT_EQ(m.name, "golden");
  EXPECT_EQ(m.base_seed, 7u);
  ASSERT_EQ(m.cells.size(), 2u);

  const std::vector<Job> jobs = expand_manifest(m);
  // Cell 0: 2 rows-values x 2 testers x 2 trials = 8.
  // Cell 1: 2 count-values x 2 instances x 1 trial = 4.
  ASSERT_EQ(jobs.size(), 12u);

  // Axis order: rows axis outermost, then tester, then trial.
  EXPECT_EQ(jobs[0].instance.label(), "grid(cols=12,rows=12)");
  EXPECT_EQ(jobs[0].tester, TesterKind::kPlanarity);
  EXPECT_EQ(jobs[0].trial, 0u);
  EXPECT_EQ(jobs[1].trial, 1u);
  EXPECT_EQ(jobs[2].tester, TesterKind::kCycleFree);
  EXPECT_EQ(jobs[4].instance.label(), "grid(cols=12,rows=16)");
  // Golden instance seed (same derivation chain as Registry golden).
  EXPECT_EQ(jobs[0].instance.seed, 0x4b58ff6823165966ULL);
  // All four grid(rows=12) jobs share one instance; seeds match.
  EXPECT_EQ(jobs[0].instance.hash(), jobs[2].instance.hash());
  EXPECT_NE(jobs[0].instance.hash(), jobs[4].instance.hash());
  // Trials vary the tester seed, not the instance.
  EXPECT_NE(jobs[0].tester_seed, jobs[1].tester_seed);
  EXPECT_EQ(jobs[0].tester_seed, derive_tester_seed(jobs[0].instance.seed, 0));

  // Perturbed cell: the seed covers the base family only, so the count
  // axis sweeps noise on a fixed base graph (same seed, different label /
  // hash); the instance index still separates sibling graphs.
  EXPECT_EQ(jobs[8].instance.label(), "cycle(n=30)+k33_blobs(count=2)");
  EXPECT_EQ(jobs[8].instance_index, 0u);
  EXPECT_EQ(jobs[9].instance_index, 1u);
  EXPECT_NE(jobs[8].instance.seed, jobs[9].instance.seed);
  EXPECT_EQ(jobs[10].instance.label(), "cycle(n=30)+k33_blobs(count=4)");
  EXPECT_EQ(jobs[8].instance.seed, jobs[10].instance.seed);
  EXPECT_NE(jobs[8].instance.hash(), jobs[10].instance.hash());
  // A count=4 blob graph extends the count=2 one: shared Rng, nested
  // noise (edge ids renumber -- the builder normalizes -- but every
  // count=2 edge is present in the count=4 graph).
  const Graph two = build_instance(jobs[8].instance);
  const Graph four = build_instance(jobs[10].instance);
  EXPECT_EQ(four.num_nodes(), two.num_nodes() + 2 * 6);
  EXPECT_EQ(four.num_edges(), two.num_edges() + 2 * 10);
  for (EdgeId e = 0; e < two.num_edges(); ++e) {
    EXPECT_TRUE(four.has_edge(two.endpoints(e).u, two.endpoints(e).v));
  }

  // Same manifest => bit-identical job list (the reproducibility contract).
  const std::vector<Job> again = expand_manifest(m);
  ASSERT_EQ(again.size(), jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(again[j].cell_key(), jobs[j].cell_key());
    EXPECT_EQ(again[j].instance.seed, jobs[j].instance.seed);
    EXPECT_EQ(again[j].tester_seed, jobs[j].tester_seed);
    EXPECT_EQ(again[j].instance.hash(), jobs[j].instance.hash());
  }
}

TEST(Manifest, RejectsUnknownNamesAndBadFields) {
  Manifest m;
  std::string err;
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "not_a_family"}]})", &m, &err));
  EXPECT_NE(err.find("unknown scenario"), std::string::npos);
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "grid", "tester": "nope"}]})", &m, &err));
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "grid", "perturb": {"kind": "nope"}}]})", &m,
      &err));
  EXPECT_FALSE(parse_manifest(R"({"cells": []})", &m, &err));
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "grid", "params": {"rows": []}}]})", &m,
      &err));
  // Presets fix their own perturbation.
  EXPECT_FALSE(parse_manifest(
      R"({"cells": [{"scenario": "road_network",
                     "perturb": {"kind": "k5_blobs"}}]})",
      &m, &err));
}

// ---- Corpus ---------------------------------------------------------------

TEST(Corpus, RoundTripsGraphsBitForBit) {
  const std::string dir = testing::TempDir() + "cpt_corpus_rt";
  const CorpusStore store(dir);
  ScenarioParams params;
  params.set_int("n", 90);
  const ScenarioInstance inst = resolve_scenario("random_planar", params, 9, 1);
  const Graph g = build_instance(inst);
  ASSERT_TRUE(store.save(inst.hash(), g));
  Graph loaded;
  ASSERT_TRUE(store.load(inst.hash(), &loaded));
  ASSERT_EQ(loaded.num_nodes(), g.num_nodes());
  ASSERT_EQ(loaded.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(loaded.endpoints(e).u, g.endpoints(e).u);
    EXPECT_EQ(loaded.endpoints(e).v, g.endpoints(e).v);
  }
  Graph missing;
  EXPECT_FALSE(store.load(inst.hash() + 1, &missing));
}

TEST(Corpus, BatchHitMissCountsAreDeterministic) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(parse_manifest(kSmallManifest, &m, &err)) << err;
  // A fresh directory per run: the first batch must see an empty cache.
  std::string dir_template = testing::TempDir() + "cpt_corpus_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template.data()), nullptr);

  BatchOptions opt;
  opt.threads = 2;
  opt.corpus_dir = dir_template;
  const BatchResult first = run_batch(m, opt);
  // 2 grid instances + 4 perturbed cycle instances (2 counts x 2 indices).
  EXPECT_EQ(first.corpus.unique_instances, 6u);
  EXPECT_EQ(first.corpus.generated, 6u);
  EXPECT_EQ(first.corpus.disk_hits, 0u);

  const BatchResult second = run_batch(m, opt);
  EXPECT_EQ(second.corpus.unique_instances, 6u);
  EXPECT_EQ(second.corpus.generated, 0u);
  EXPECT_EQ(second.corpus.disk_hits, 6u);

  // Cached and regenerated instances are interchangeable: identical
  // aggregates.
  const auto cells1 = aggregate_cells(first);
  const auto cells2 = aggregate_cells(second);
  EXPECT_EQ(render_aggregate_json(m, first, cells1),
            render_aggregate_json(m, second, cells2));
}

// ---- Engine ---------------------------------------------------------------

TEST(Engine, MatchesDirectTesterCalls) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(parse_manifest(kSmallManifest, &m, &err)) << err;
  const std::vector<Job> jobs = expand_manifest(m);
  // Planarity job == direct test_planarity with the same options.
  const Job& pj = jobs[0];
  const Graph pg = build_instance(pj.instance);
  const JobResult via_engine = run_job(pj, pg);
  TesterOptions topt;
  topt.epsilon = pj.epsilon;
  topt.seed = pj.tester_seed;
  topt.num_threads = pj.sim_threads;
  topt.stage1.adaptive = pj.adaptive;
  const TesterResult direct = test_planarity(pg, topt);
  EXPECT_EQ(via_engine.verdict, direct.verdict);
  EXPECT_EQ(via_engine.rounds, direct.ledger.total_rounds());
  EXPECT_EQ(via_engine.messages, direct.ledger.total_messages());

  // Cycle-freeness job == direct test_cycle_freeness.
  const Job& cj = jobs[2];
  ASSERT_EQ(cj.tester, TesterKind::kCycleFree);
  const Graph cg = build_instance(cj.instance);
  const JobResult ce = run_job(cj, cg);
  MinorFreeOptions mopt;
  mopt.epsilon = cj.epsilon;
  mopt.alpha = cj.alpha;
  mopt.randomized = cj.randomized;
  mopt.delta = cj.delta;
  mopt.seed = cj.tester_seed;
  mopt.adaptive_phases = cj.adaptive;
  mopt.num_threads = cj.sim_threads;
  const AppResult cd = test_cycle_freeness(cg, mopt);
  EXPECT_EQ(ce.verdict, cd.verdict);
  EXPECT_EQ(ce.rounds, cd.ledger.total_rounds());
  EXPECT_EQ(ce.messages, cd.ledger.total_messages());
}

TEST(Engine, AggregateJsonIsThreadCountInvariant) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(parse_manifest(kSmallManifest, &m, &err)) << err;
  BatchOptions serial;
  serial.threads = 1;
  BatchOptions parallel;
  parallel.threads = 4;
  const BatchResult a = run_batch(m, serial);
  const BatchResult b = run_batch(m, parallel);
  EXPECT_EQ(b.threads_used, 4u);
  const std::string ja = render_aggregate_json(m, a, aggregate_cells(a));
  const std::string jb = render_aggregate_json(m, b, aggregate_cells(b));
  EXPECT_EQ(ja, jb);
  EXPECT_EQ(render_aggregate_csv(aggregate_cells(a)),
            render_aggregate_csv(aggregate_cells(b)));
}

TEST(Aggregate, QuantilesAreNearestRank) {
  const QuantileSummary q = summarize({5, 1, 3, 2, 4});
  EXPECT_EQ(q.min, 1u);
  EXPECT_EQ(q.p25, 2u);
  EXPECT_EQ(q.p50, 3u);
  EXPECT_EQ(q.p75, 4u);
  EXPECT_EQ(q.max, 5u);
  const QuantileSummary single = summarize({42});
  EXPECT_EQ(single.min, 42u);
  EXPECT_EQ(single.p50, 42u);
  EXPECT_EQ(single.max, 42u);
}

}  // namespace
}  // namespace cpt::scenario
