#include <gtest/gtest.h>

#include <cmath>

#include "congest/network.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "partition/partition.h"
#include "tests/test_util.h"

namespace cpt {
namespace {

Stage1Result run(const Graph& g, double epsilon,
                 congest::RoundLedger* ledger_out = nullptr,
                 std::uint32_t phase_override = 0) {
  congest::Network net(g);
  congest::Simulator sim(net);
  congest::RoundLedger ledger;
  Stage1Options opt;
  opt.epsilon = epsilon;
  opt.phase_override = phase_override;
  Stage1Result r = run_stage1(sim, g, opt, ledger);
  if (ledger_out != nullptr) *ledger_out = ledger;
  return r;
}

TEST(Stage1, TheoryPhaseCountMatchesClaim3) {
  // (1 - 1/36)^t <= eps/2.
  for (const double eps : {0.5, 0.25, 0.1, 0.05}) {
    const std::uint32_t t = stage1_theory_phase_count(eps, 3);
    EXPECT_LE(std::pow(1.0 - 1.0 / 36.0, t), eps / 2.0);
    EXPECT_GT(std::pow(1.0 - 1.0 / 36.0, t - 2), eps / 2.0);
  }
}

TEST(Stage1, PlanarNeverRejectsAndMeetsCutTarget) {
  Rng rng(3);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = gen::random_planar(150 + 40 * trial, 350 + 60 * trial, rng);
    const Stage1Result r = run(g, 0.25);
    EXPECT_FALSE(r.rejected);
    EXPECT_TRUE(validate_part_forest(g, r.forest));
    const PartitionStats stats = measure_partition(g, r.forest);
    EXPECT_LE(stats.cut_edges, g.num_edges() / 8);  // eps*m/2 = m/8
  }
}

TEST(Stage1, CutWeightNeverIncreasesAcrossPhases) {
  Rng rng(5);
  const Graph g = gen::apollonian(200, rng);
  const Stage1Result r = run(g, 0.25);
  for (std::size_t i = 0; i + 1 < r.phase_stats.size(); ++i) {
    EXPECT_LE(r.phase_stats[i].cut_after, r.phase_stats[i].cut_before);
    EXPECT_EQ(r.phase_stats[i].cut_after, r.phase_stats[i + 1].cut_before);
  }
}

TEST(Stage1, ContractionFactorBeatsClaim1OnAverage) {
  // Claim 1 guarantees w(G_{i+1}) <= (1 - 1/36) w(G_i); measured phases
  // must at least meet the bound (they usually do far better).
  Rng rng(7);
  const Graph g = gen::triangulated_grid(14, 14);
  const Stage1Result r = run(g, 0.25);
  for (const PhaseStats& p : r.phase_stats) {
    if (p.cut_before == 0) continue;
    EXPECT_LE(static_cast<double>(p.cut_after),
              (1.0 - 1.0 / 36.0) * static_cast<double>(p.cut_before) + 1.0);
  }
}

TEST(Stage1, PartsConnectedWithKnownRootsAndTrees) {
  Rng rng(9);
  const Graph g = gen::grid(12, 12);
  const Stage1Result r = run(g, 0.3);
  ASSERT_FALSE(r.rejected);
  EXPECT_TRUE(validate_part_forest(g, r.forest));
}

TEST(Stage1, DiameterBoundedBy4ToThePhases) {
  // Claim 4: diameter of parts after phase i is at most 4^i. The measured
  // eccentricity is a lower bound on diameter, so check ecc <= 4^phases.
  Rng rng(11);
  const Graph g = gen::random_planar(250, 600, rng);
  const Stage1Result r = run(g, 0.25);
  const PartitionStats stats = measure_partition(g, r.forest);
  const double bound = std::pow(4.0, r.phases_emulated);
  EXPECT_LE(static_cast<double>(stats.max_part_ecc), bound);
}

TEST(Stage1, CliqueIsRejectedWithArboricityEvidence) {
  const Graph g = gen::complete(24);
  const Stage1Result r = run(g, 0.25);
  EXPECT_TRUE(r.rejected);
  EXPECT_FALSE(r.rejecting_nodes.empty());
}

TEST(Stage1, FastForwardChargesRemainingPhases) {
  // A tree collapses to one part quickly; phases_total must still reflect
  // the full strict schedule and rounds must include the fast-forward.
  Rng rng(13);
  const Graph g = gen::random_tree(100, rng);
  congest::RoundLedger ledger;
  const Stage1Result r = run(g, 0.25, &ledger);
  EXPECT_FALSE(r.rejected);
  EXPECT_EQ(r.phases_total, stage1_theory_phase_count(0.25, 3));
  EXPECT_LT(r.phases_emulated, r.phases_total);
  EXPECT_GT(ledger.rounds_with_prefix("stage1/fast-forward"), 0u);
}

TEST(Stage1, PhaseOverrideShortensSchedule) {
  Rng rng(15);
  const Graph g = gen::apollonian(150, rng);
  congest::RoundLedger full;
  congest::RoundLedger two;
  run(g, 0.25, &full);
  const Stage1Result r2 = run(g, 0.25, &two, /*phase_override=*/2);
  EXPECT_EQ(r2.phases_total, 2u);
  EXPECT_LT(two.total_rounds(), full.total_rounds());
}

TEST(Stage1, AdaptiveStopsEarlyWithSameGuarantee) {
  Rng rng(17);
  const Graph g = gen::triangulated_grid(12, 12);
  congest::Network net(g);
  congest::Simulator sim(net);
  congest::RoundLedger ledger;
  Stage1Options opt;
  opt.epsilon = 0.25;
  opt.adaptive = true;
  const Stage1Result r = run_stage1(sim, g, opt, ledger);
  EXPECT_FALSE(r.rejected);
  const PartitionStats stats = measure_partition(g, r.forest);
  EXPECT_LE(stats.cut_edges, g.num_edges() / 8);
}

TEST(Stage1, DisconnectedInputsPartitionPerComponent) {
  const Graph g = gen::disjoint_copies(gen::grid(4, 4), 3);
  const Stage1Result r = run(g, 0.25);
  ASSERT_FALSE(r.rejected);
  EXPECT_TRUE(validate_part_forest(g, r.forest));
  // Parts never span components.
  const auto comps = connected_components(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(comps.component_of[v], comps.component_of[r.forest.root[v]]);
  }
}

TEST(Stage1, RoundsLedgerIsConsistent) {
  Rng rng(19);
  const Graph g = gen::random_planar(120, 280, rng);
  congest::RoundLedger ledger;
  run(g, 0.25, &ledger);
  std::uint64_t sum = 0;
  for (const auto& p : ledger.passes()) sum += p.rounds;
  EXPECT_EQ(sum, ledger.total_rounds());
  EXPECT_GT(ledger.total_rounds(), 0u);
}

}  // namespace
}  // namespace cpt
