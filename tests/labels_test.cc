#include <gtest/gtest.h>

#include <algorithm>

#include "congest/network.h"
#include "congest/primitives.h"
#include "congest/simulator.h"
#include "core/labels.h"
#include "graph/generators.h"
#include "planar/lr_planarity.h"
#include "tests/test_util.h"

namespace cpt {
namespace {

using congest::BfsForest;
using congest::Network;
using congest::Simulator;
using congest::TreeView;
using testutil::whole_graph_parts;

// Centralized reference label computation.
std::vector<Label> reference_labels(
    const Graph& g, const std::vector<EdgeId>& parent,
    const std::vector<std::vector<EdgeId>>& children,
    const std::vector<std::vector<std::uint32_t>>& kid_labels) {
  std::vector<Label> labels(g.num_nodes());
  // Repeated relaxation down the tree (depth passes).
  for (NodeId pass = 0; pass < g.num_nodes(); ++pass) {
    bool changed = false;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (std::size_t i = 0; i < children[v].size(); ++i) {
        const NodeId w = g.other_endpoint(children[v][i], v);
        Label want = labels[v];
        want.push_back(kid_labels[v][i]);
        if (labels[w] != want) {
          labels[w] = want;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  (void)parent;
  return labels;
}

TEST(ChildEdgeLabels, RanksFollowRotationFromParent) {
  // Star with center 1: nodes 0..3, edges 1-0, 1-2, 1-3. BFS root 0, so at
  // node 1 the parent edge is (0,1) and children are 2 and 3.
  GraphBuilder b(4);
  b.add_edge(1, 0);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  const Graph g = std::move(b).build();
  const PartForest pf = whole_graph_parts(g);
  RotationSystem rot(4);
  const EdgeId e10 = g.find_edge(1, 0);
  const EdgeId e12 = g.find_edge(1, 2);
  const EdgeId e13 = g.find_edge(1, 3);
  rot[0] = {e10};
  rot[1] = {e12, e10, e13};  // rotation: 2, parent, 3
  rot[2] = {e12};
  rot[3] = {e13};
  const auto kid = child_edge_labels(g, rot, pf.parent_edge, pf.children);
  // Children of 1 in pf order; the rank must start after the parent edge:
  // (1,3) is rank 1, (1,2) is rank 2.
  ASSERT_EQ(pf.children[1].size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const EdgeId ce = pf.children[1][i];
    EXPECT_EQ(kid[1][i], ce == e13 ? 1u : 2u);
  }
}

TEST(ChildEdgeLabels, RootStartsAtFirstRotationEntry) {
  const Graph g = gen::star(4);  // center 0
  const PartForest pf = whole_graph_parts(g);
  RotationSystem rot = adjacency_rotation(g);
  const auto kid = child_edge_labels(g, rot, pf.parent_edge, pf.children);
  ASSERT_EQ(kid[0].size(), 3u);
  // Ranks are 1..3 in rotation order.
  std::vector<std::uint32_t> sorted = kid[0];
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(LabelDistribute, MatchesCentralizedReference) {
  Rng rng(5);
  const Graph g = gen::random_planar(120, 260, rng);
  const PartForest pf = whole_graph_parts(g);
  const auto rot = *lr_planar_embedding(g);
  const auto kid = child_edge_labels(g, rot, pf.parent_edge, pf.children);

  Network net(g);
  Simulator sim(net);
  LabelDistribute dist(TreeView{&pf.parent_edge, &pf.children, nullptr}, kid);
  const auto r = sim.run(dist);
  EXPECT_TRUE(r.quiesced);

  const auto ref = reference_labels(g, pf.parent_edge, pf.children, kid);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(dist.label(v), ref[v]) << "node " << v;
  }
}

TEST(LabelDistribute, PipelinedRoundBound) {
  // Rounds should be about depth + max label length, not their product.
  const Graph g = gen::path(64);
  const PartForest pf = whole_graph_parts(g);
  std::vector<std::vector<std::uint32_t>> kid(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    kid[v].assign(pf.children[v].size(), 1);
  }
  Network net(g);
  Simulator sim(net);
  LabelDistribute dist(TreeView{&pf.parent_edge, &pf.children, nullptr}, kid);
  const auto r = sim.run(dist);
  EXPECT_EQ(dist.label(63).size(), 63u);
  EXPECT_LE(r.rounds, 2u * 63u + 4u);
}

TEST(LabelLexOrder, EqualsTreePreorder) {
  // Sorting nodes by label must equal a preorder traversal that visits
  // children in kid-label order.
  Rng rng(7);
  const Graph g = gen::random_tree(200, rng);
  const PartForest pf = whole_graph_parts(g);
  const auto rot = adjacency_rotation(g);  // any rotation works on a tree
  const auto kid = child_edge_labels(g, rot, pf.parent_edge, pf.children);
  const auto labels = reference_labels(g, pf.parent_edge, pf.children, kid);

  std::vector<NodeId> by_label(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) by_label[v] = v;
  std::sort(by_label.begin(), by_label.end(),
            [&](NodeId a, NodeId b) { return labels[a] < labels[b]; });

  std::vector<NodeId> preorder;
  std::vector<NodeId> stack{0};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    preorder.push_back(v);
    // Children sorted by descending kid label so the smallest pops first.
    std::vector<std::pair<std::uint32_t, NodeId>> kids;
    for (std::size_t i = 0; i < pf.children[v].size(); ++i) {
      kids.push_back({kid[v][i], g.other_endpoint(pf.children[v][i], v)});
    }
    std::sort(kids.rbegin(), kids.rend());
    for (const auto& [label, w] : kids) stack.push_back(w);
  }
  EXPECT_EQ(by_label, preorder);
}

TEST(EdgeLabelStream, DeliversLabelsAcrossSelectedEdges) {
  const Graph g = gen::cycle(6);
  Network net(g);
  Simulator sim(net);
  std::vector<Label> labels(6);
  labels[2] = {7, 8, 9};
  labels[5] = {1};
  std::vector<std::vector<std::uint32_t>> send_ports(6);
  // Node 2 streams to both neighbors; node 5 to one.
  send_ports[2] = {0, 1};
  send_ports[5] = {0};
  EdgeLabelStream stream(6, labels, send_ports);
  const auto r = sim.run(stream);
  EXPECT_TRUE(r.quiesced);
  int deliveries = 0;
  for (NodeId v = 0; v < 6; ++v) {
    for (const auto& [port, label] : stream.received()[v]) {
      const NodeId from = net.arc(v, port).to;
      EXPECT_EQ(label, labels[from]);
      ++deliveries;
    }
  }
  EXPECT_EQ(deliveries, 3);
}

TEST(UpStreamWords, FramesNeverInterleave) {
  // Star: 6 leaves each injecting a distinct frame; the root must receive
  // all 6 frames intact.
  const Graph g = gen::star(7);
  const PartForest pf = whole_graph_parts(g);
  Network net(g);
  Simulator sim(net);
  UpStreamWords up(TreeView{&pf.parent_edge, &pf.children, nullptr});
  for (NodeId v = 1; v < 7; ++v) {
    up.initial[v].push_back({static_cast<std::int64_t>(v), 100 + v, 200 + v});
    up.initial[v].push_back({-static_cast<std::int64_t>(v)});
  }
  const auto r = sim.run(up);
  EXPECT_TRUE(r.quiesced);
  const auto& frames = up.frames_at_root(0);
  ASSERT_EQ(frames.size(), 12u);
  int long_frames = 0;
  for (const auto& f : frames) {
    if (f.size() == 3) {
      ++long_frames;
      EXPECT_EQ(f[1], f[0] + 100);
      EXPECT_EQ(f[2], f[0] + 200);
    } else {
      ASSERT_EQ(f.size(), 1u);
      EXPECT_LT(f[0], 0);
    }
  }
  EXPECT_EQ(long_frames, 6);
}

TEST(UpStreamWords, DeepTreePipelines) {
  const Graph g = gen::path(40);
  PartForest pf = whole_graph_parts(g);
  Network net(g);
  Simulator sim(net);
  UpStreamWords up(TreeView{&pf.parent_edge, &pf.children, nullptr});
  up.initial[39].push_back({1, 2, 3, 4});
  const auto r = sim.run(up);
  ASSERT_EQ(up.frames_at_root(0).size(), 1u);
  EXPECT_EQ(up.frames_at_root(0)[0], (std::vector<std::int64_t>{1, 2, 3, 4}));
  EXPECT_LE(r.rounds, 39u + 5u + 2u);
}

TEST(UpStreamWords, RootOwnFramesGoStraightToResult) {
  const Graph g = gen::path(3);
  PartForest pf = whole_graph_parts(g);
  Network net(g);
  Simulator sim(net);
  UpStreamWords up(TreeView{&pf.parent_edge, &pf.children, nullptr});
  up.initial[0].push_back({42});
  const auto r = sim.run(up);
  EXPECT_EQ(r.messages, 0u);
  ASSERT_EQ(up.frames_at_root(0).size(), 1u);
  EXPECT_EQ(up.frames_at_root(0)[0][0], 42);
}

}  // namespace
}  // namespace cpt
