#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "graph/ops.h"
#include "planar/embedder.h"
#include "planar/embedding.h"
#include "planar/lr_planarity.h"

namespace cpt {
namespace {

TEST(Embedding, AdjacencyRotationIsValid) {
  const Graph g = gen::triangulated_grid(4, 5);
  EXPECT_TRUE(is_valid_rotation(g, adjacency_rotation(g)));
}

TEST(Embedding, InvalidRotationsDetected) {
  const Graph g = gen::complete(4);
  RotationSystem rot = adjacency_rotation(g);
  // Wrong size.
  RotationSystem truncated = rot;
  truncated[0].pop_back();
  EXPECT_FALSE(is_valid_rotation(g, truncated));
  // Foreign edge.
  RotationSystem wrong = rot;
  wrong[0][0] = wrong[1].back() == wrong[0][0] ? wrong[1][0] : g.find_edge(1, 2);
  EXPECT_FALSE(is_valid_rotation(g, wrong));
  // Duplicate entry.
  RotationSystem dup = rot;
  dup[0][1] = dup[0][0];
  EXPECT_FALSE(is_valid_rotation(g, dup));
}

TEST(Embedding, FaceCountsOnKnownEmbeddings) {
  // A cycle has 2 faces with any (necessarily unique) rotation.
  EXPECT_EQ(count_faces(gen::cycle(8), adjacency_rotation(gen::cycle(8))), 2u);
  // A tree has exactly 1 face.
  EXPECT_EQ(count_faces(gen::path(6), adjacency_rotation(gen::path(6))), 1u);
  EXPECT_EQ(count_faces(gen::star(7), adjacency_rotation(gen::star(7))), 1u);
}

TEST(Embedding, TreesAreAlwaysPlanarUnderAnyRotation) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::random_tree(100, rng);
    EXPECT_TRUE(verify_planar_embedding(g, adjacency_rotation(g)));
  }
}

TEST(Embedding, K4AdjacencyRotationHappensToMatter) {
  // For K4 the adjacency rotation may or may not be planar; the LR
  // embedding must always be.
  const Graph g = gen::complete(4);
  const auto emb = lr_planar_embedding(g);
  ASSERT_TRUE(emb.has_value());
  EXPECT_TRUE(verify_planar_embedding(g, *emb));
  const std::uint64_t faces = count_faces(g, *emb);
  EXPECT_EQ(faces, 4u);  // Euler: 4 - 6 + F = 2
}

TEST(Embedding, NonPlanarRotationFailsEuler) {
  // K5 has no planar rotation at all.
  const Graph g = gen::complete(5);
  EXPECT_FALSE(verify_planar_embedding(g, adjacency_rotation(g)));
}

TEST(Embedding, DisconnectedGraphsVerifyPerComponent) {
  const std::vector<Graph> parts = {gen::cycle(5), gen::grid(3, 3)};
  const Graph g = disjoint_union(parts);
  const auto emb = lr_planar_embedding(g);
  ASSERT_TRUE(emb.has_value());
  EXPECT_TRUE(verify_planar_embedding(g, *emb));
}

TEST(Embedder, BestEffortCertifiesExactly) {
  Rng rng(7);
  const Graph planar = gen::apollonian(60, rng);
  const EmbeddingResult ok = best_effort_embedding(planar);
  EXPECT_TRUE(ok.planar_certified);
  EXPECT_TRUE(verify_planar_embedding(planar, ok.rotation));

  const Graph nonplanar = gen::complete_bipartite(3, 3);
  const EmbeddingResult bad = best_effort_embedding(nonplanar);
  EXPECT_FALSE(bad.planar_certified);
  // Best effort still yields a structurally valid rotation.
  EXPECT_TRUE(is_valid_rotation(nonplanar, bad.rotation));
  EXPECT_FALSE(verify_planar_embedding(nonplanar, bad.rotation));
}

// Property sweep: LR embeddings of random planar graphs satisfy Euler's
// formula on every component.
class EmbedSweep : public ::testing::TestWithParam<int> {};

TEST_P(EmbedSweep, LrEmbeddingVerifies) {
  Rng rng(4000 + GetParam());
  const NodeId n = 10 + static_cast<NodeId>(rng.next_below(300));
  const EdgeId m = n - 1 + static_cast<EdgeId>(rng.next_below(2 * n - 5));
  const Graph g = gen::random_planar(n, m, rng);
  const auto emb = lr_planar_embedding(g);
  ASSERT_TRUE(emb.has_value());
  EXPECT_TRUE(is_valid_rotation(g, *emb));
  EXPECT_TRUE(verify_planar_embedding(g, *emb));
}

TEST_P(EmbedSweep, EulerFaceCountMatches) {
  Rng rng(5000 + GetParam());
  const NodeId n = 20 + static_cast<NodeId>(rng.next_below(200));
  const Graph g = gen::apollonian(n, rng);
  const auto emb = lr_planar_embedding(g);
  ASSERT_TRUE(emb.has_value());
  // Connected: V - E + F = 2.
  EXPECT_EQ(count_faces(g, *emb),
            2u + g.num_edges() - g.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmbedSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace cpt
