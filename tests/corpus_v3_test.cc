// Corpus v3 + streaming generators + pooled run-state suite (the
// out-of-core PR): v3 round-trip through the zero-copy mmap path,
// mapped-view vs GraphBuilder bit-identity across every registry family,
// torn/truncated/bit-rotted v3 files, transparent v2 -> v3 migration
// (including the forged-header size regression that used to overflow
// `long` arithmetic), save_stream byte-identity with the in-memory writer,
// edge-stream equivalence with the materialized generators, and the
// engine's pooled RunState reuse pinned bit-identical to fresh state at
// every thread count.
#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/edge_stream.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "scenario/aggregate.h"
#include "scenario/corpus.h"
#include "scenario/engine.h"
#include "scenario/manifest.h"
#include "scenario/registry.h"
#include "util/rng.h"

namespace cpt::scenario {
namespace {

std::string temp_dir() {
  std::string t = testing::TempDir() + "cpt_v3_XXXXXX";
  EXPECT_NE(mkdtemp(t.data()), nullptr);
  return t;
}

std::string slurp_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string bytes;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, got);
  std::fclose(f);
  return bytes;
}

// Flips one byte at `offset` in an existing file.
void garble_file(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0x5a, f);
  std::fclose(f);
}

// Structural bit-identity: same CSR arrays, arc for arc. The acceptance
// bar for the mmap path -- a mapped view must be indistinguishable from a
// GraphBuilder build of the same edge set.
void expect_identical_csr(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  const auto ao = a.csr_offsets();
  const auto bo = b.csr_offsets();
  ASSERT_EQ(ao.size(), bo.size());
  ASSERT_EQ(std::memcmp(ao.data(), bo.data(), ao.size_bytes()), 0);
  const auto aa = a.csr_arcs();
  const auto ba = b.csr_arcs();
  ASSERT_EQ(aa.size(), ba.size());
  ASSERT_EQ(std::memcmp(aa.data(), ba.data(), aa.size_bytes()), 0);
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    ASSERT_EQ(a.endpoints(e).u, b.endpoints(e).u) << e;
    ASSERT_EQ(a.endpoints(e).v, b.endpoints(e).v) << e;
  }
}

// ---- v3 round-trip and the zero-copy contract -----------------------------

TEST(CorpusV3, RoundTripsAsZeroCopyView) {
  const CorpusStore store(temp_dir());
  ScenarioParams params;
  params.set_int("n", 90);
  const ScenarioInstance inst = resolve_scenario("random_planar", params, 9, 1);
  const Graph g = build_instance(inst);
  EXPECT_FALSE(g.is_external_view());
  ASSERT_TRUE(store.save(inst.hash(), g));
  Graph loaded;
  ASSERT_EQ(store.load(inst.hash(), &loaded), CorpusStore::LoadStatus::kHit);
  // The hit is a mapping of the file, not a rebuild.
  EXPECT_TRUE(loaded.is_external_view());
  expect_identical_csr(loaded, g);
  // Shallow copies share the mapping and stay valid views.
  Graph copy = loaded;
  EXPECT_TRUE(copy.is_external_view());
  EXPECT_EQ(copy.csr_offsets().data(), loaded.csr_offsets().data());
}

TEST(CorpusV3, MappedViewMatchesBuilderAcrossFamilies) {
  const CorpusStore store(temp_dir());
  for (const FamilyInfo& family : scenario_families()) {
    if (std::string_view(family.name) == "file") continue;  // needs a path
    const ScenarioInstance inst =
        resolve_scenario(family.name, ScenarioParams{}, /*base_seed=*/11,
                         /*index=*/0);
    const Graph built = build_instance(inst);
    ASSERT_TRUE(store.save(inst.hash(), built)) << family.name;
    Graph mapped;
    ASSERT_EQ(store.load(inst.hash(), &mapped), CorpusStore::LoadStatus::kHit)
        << family.name;
    EXPECT_TRUE(mapped.is_external_view()) << family.name;
    expect_identical_csr(mapped, built);
  }
}

// ---- Damage detection ------------------------------------------------------

TEST(CorpusV3, DetectsTornTruncatedAndBitRottenFiles) {
  const std::string dir = temp_dir();
  const CorpusStore store(dir);
  const ScenarioInstance inst =
      resolve_scenario("grid", ScenarioParams{}, 4, 0);
  const Graph g = build_instance(inst);
  ASSERT_TRUE(store.save(inst.hash(), g));
  const std::string path = store.path_for(inst.hash());
  const std::string pristine = slurp_bytes(path);
  ASSERT_GE(pristine.size(), 64u + 4u);  // header + at least one section

  Graph out;
  const auto expect_corrupt_at = [&](long offset) {
    garble_file(path, offset);
    EXPECT_EQ(store.load(inst.hash(), &out), CorpusStore::LoadStatus::kCorrupt)
        << "offset " << offset;
    ASSERT_TRUE(store.save(inst.hash(), g));
  };
  expect_corrupt_at(1);       // magic
  expect_corrupt_at(5);       // version
  expect_corrupt_at(10);      // n (header checksum catches it)
  expect_corrupt_at(18);      // m
  expect_corrupt_at(26);      // payload checksum field
  expect_corrupt_at(34);      // header checksum field
  expect_corrupt_at(45);      // reserved padding must stay zero
  expect_corrupt_at(64 + 2);  // offsets section (payload checksum)
  expect_corrupt_at(static_cast<long>(pristine.size()) - 3);  // endpoints

  // Torn mid-header and mid-payload.
  for (const std::size_t keep : {std::size_t{10}, std::size_t{64},
                                 pristine.size() - 1}) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(pristine.data(), 1, keep, f), keep);
    std::fclose(f);
    EXPECT_EQ(store.load(inst.hash(), &out), CorpusStore::LoadStatus::kCorrupt)
        << "torn at " << keep;
  }
  // Trailing junk: the exact-size cross-check refuses it.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(pristine.data(), 1, pristine.size(), f),
              pristine.size());
    std::fputc('x', f);
    std::fclose(f);
    EXPECT_EQ(store.load(inst.hash(), &out), CorpusStore::LoadStatus::kCorrupt);
  }
  ASSERT_TRUE(store.save(inst.hash(), g));
  EXPECT_EQ(store.load(inst.hash(), &out), CorpusStore::LoadStatus::kHit);
  expect_identical_csr(out, g);
}

// ---- v2 migration ----------------------------------------------------------

TEST(CorpusV2, MigratesToV3OnFirstLoad) {
  const CorpusStore store(temp_dir());
  ScenarioParams params;
  params.set_int("n", 70);
  const ScenarioInstance inst = resolve_scenario("random_planar", params, 6, 2);
  const Graph g = build_instance(inst);
  const std::string path = store.path_for(inst.hash());
  ASSERT_TRUE(write_corpus_v2(path, g));
  {
    std::uint32_t version = 0;
    const std::string bytes = slurp_bytes(path);
    ASSERT_GE(bytes.size(), 8u);
    std::memcpy(&version, bytes.data() + 4, 4);
    ASSERT_EQ(version, 2u);
  }

  // First load replays the v2 endpoint list (an owned build, not a view)
  // and re-saves the entry as v3.
  Graph first;
  ASSERT_EQ(store.load(inst.hash(), &first), CorpusStore::LoadStatus::kHit);
  EXPECT_FALSE(first.is_external_view());
  expect_identical_csr(first, g);
  {
    std::uint32_t version = 0;
    const std::string bytes = slurp_bytes(path);
    ASSERT_GE(bytes.size(), 64u);
    std::memcpy(&version, bytes.data() + 4, 4);
    EXPECT_EQ(version, 3u);
  }

  // Second load maps the migrated file.
  Graph second;
  ASSERT_EQ(store.load(inst.hash(), &second), CorpusStore::LoadStatus::kHit);
  EXPECT_TRUE(second.is_external_view());
  expect_identical_csr(second, g);
}

TEST(CorpusV2, RejectsForgedEdgeCountWithoutOverflow) {
  // Regression: the v2 size cross-check used to run in `long` arithmetic
  // seeded from the untrusted header, so a forged edge count could wrap
  // the expected size into agreement and drive a huge allocation. All-u64
  // arithmetic + the node cap must classify it as corrupt instead.
  const CorpusStore store(temp_dir());
  const Graph g = gen::grid(4, 4);
  const std::uint64_t hash = 0xabcdef0123456789ULL;
  const std::string path = store.path_for(hash);
  ASSERT_TRUE(write_corpus_v2(path, g));
  Graph out;
  for (const std::uint32_t forged_m :
       {0xFFFFFFFFu, 0x80000000u, 0x20000000u}) {
    ASSERT_TRUE(write_corpus_v2(path, g));
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 12, SEEK_SET), 0);  // v2 header: m at [12, 16)
    ASSERT_EQ(std::fwrite(&forged_m, 4, 1, f), 1u);
    std::fclose(f);
    EXPECT_EQ(store.load(hash, &out), CorpusStore::LoadStatus::kCorrupt)
        << forged_m;
  }
  // Forged node count above the v2 replay cap: refused before allocation.
  ASSERT_TRUE(write_corpus_v2(path, g));
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const std::uint32_t forged_n = 0xF0000000u;
  ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0);  // v2 header: n at [8, 12)
  ASSERT_EQ(std::fwrite(&forged_n, 4, 1, f), 1u);
  std::fclose(f);
  EXPECT_EQ(store.load(hash, &out), CorpusStore::LoadStatus::kCorrupt);
}

// ---- Streaming generators --------------------------------------------------

void expect_stream_matches(gen::EdgeStream& stream, const Graph& g) {
  ASSERT_EQ(stream.num_nodes(), g.num_nodes());
  ASSERT_EQ(stream.num_edges(), g.num_edges());
  Endpoints e{};
  for (EdgeId i = 0; i < g.num_edges(); ++i) {
    ASSERT_TRUE(stream.next(&e)) << i;
    EXPECT_EQ(e.u, g.endpoints(i).u) << i;
    EXPECT_EQ(e.v, g.endpoints(i).v) << i;
  }
  EXPECT_FALSE(stream.next(&e));
}

TEST(EdgeStream, MatchesMaterializedGenerators) {
  {
    const auto s = gen::grid_stream(9, 13);
    const Graph g = gen::grid(9, 13);
    expect_stream_matches(*s, g);
    s->rewind();
    expect_stream_matches(*s, g);  // rewind restarts the exact sequence
  }
  {
    const auto s = gen::triangulated_grid_stream(8, 11);
    expect_stream_matches(*s, gen::triangulated_grid(8, 11));
  }
  {
    // Degenerate lattices: single row/column have no south/diagonal arcs.
    const auto s = gen::grid_stream(1, 17);
    expect_stream_matches(*s, gen::grid(1, 17));
    const auto t = gen::triangulated_grid_stream(5, 1);
    expect_stream_matches(*t, gen::triangulated_grid(5, 1));
  }
}

TEST(EdgeStream, RegistryStreamsMatchBuildInstance) {
  // Every instance the registry claims to stream must yield exactly the
  // edge list build_instance produces -- including the seeded
  // plus_random_edges perturbation (road_network preset), whose draw
  // sequence is replayed against analytic lattice adjacency.
  const char* names[] = {"grid", "triangulated_grid", "road_network"};
  for (const char* name : names) {
    const ScenarioInstance inst =
        resolve_scenario(name, ScenarioParams{}, 21, 3);
    const auto stream = make_edge_stream(inst);
    ASSERT_NE(stream, nullptr) << name;
    const Graph g = build_instance(inst);
    expect_stream_matches(*stream, g);
  }
  // Families without a streaming generator decline instead of lying.
  EXPECT_EQ(make_edge_stream(
                resolve_scenario("random_planar", ScenarioParams{}, 21, 3)),
            nullptr);
}

TEST(CorpusV3, StreamedSaveIsByteIdenticalToSave) {
  const std::string dir_a = temp_dir();
  const std::string dir_b = temp_dir();
  const CorpusStore save_store(dir_a);
  const CorpusStore stream_store(dir_b);
  const char* names[] = {"grid", "triangulated_grid", "road_network"};
  for (const char* name : names) {
    const ScenarioInstance inst =
        resolve_scenario(name, ScenarioParams{}, 13, 1);
    ASSERT_TRUE(save_store.save(inst.hash(), build_instance(inst)));
    const auto stream = make_edge_stream(inst);
    ASSERT_NE(stream, nullptr) << name;
    ASSERT_TRUE(stream_store.save_stream(inst.hash(), *stream)) << name;
    EXPECT_EQ(slurp_bytes(save_store.path_for(inst.hash())),
              slurp_bytes(stream_store.path_for(inst.hash())))
        << name;
  }
}

TEST(CorpusV3, ConcurrentSavesFromTwoProcessesNeverTearFiles) {
  // Regression for the fixed "<hash>.cpg.tmp" publish name: two writers
  // racing on the same instance used to interleave writes into one temp
  // file, so the winning rename could publish a torn hybrid. With
  // pid+counter-suffixed temps each writer owns its bytes and the final
  // rename is atomic-replace of a complete file, whoever wins.
  const std::string dir = temp_dir();
  std::vector<ScenarioInstance> insts;
  for (int i = 0; i < 4; ++i) {
    ScenarioParams params;
    params.set_int("rows", 8 + i);
    params.set_int("cols", 9);
    insts.push_back(resolve_scenario("grid", params, 21, 0));
  }
  constexpr int kRounds = 8;
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    const CorpusStore store(dir);
    for (int round = 0; round < kRounds; ++round) {
      for (const ScenarioInstance& inst : insts) {
        if (!store.save(inst.hash(), build_instance(inst))) _exit(1);
      }
    }
    _exit(0);
  }
  {
    const CorpusStore store(dir);
    for (int round = 0; round < kRounds; ++round) {
      for (const ScenarioInstance& inst : insts) {
        EXPECT_TRUE(store.save(inst.hash(), build_instance(inst)));
      }
    }
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // No temp litter (every unique tmp was renamed or removed), and every
  // published file is complete: it loads as a hit with the exact bytes a
  // solo save produces.
  std::size_t tmp_litter = 0;
  if (DIR* d = opendir(dir.c_str())) {
    while (const dirent* entry = readdir(d)) {
      if (std::strstr(entry->d_name, ".tmp") != nullptr) ++tmp_litter;
    }
    closedir(d);
  }
  EXPECT_EQ(tmp_litter, 0u);
  const std::string solo_dir = temp_dir();
  const CorpusStore raced(dir);
  const CorpusStore solo(solo_dir);
  for (const ScenarioInstance& inst : insts) {
    const Graph expect = build_instance(inst);
    Graph got;
    EXPECT_EQ(raced.load(inst.hash(), &got), CorpusStore::LoadStatus::kHit);
    EXPECT_EQ(got.num_nodes(), expect.num_nodes());
    EXPECT_EQ(got.num_edges(), expect.num_edges());
    ASSERT_TRUE(solo.save(inst.hash(), expect));
    EXPECT_EQ(slurp_bytes(raced.path_for(inst.hash())),
              slurp_bytes(solo.path_for(inst.hash())));
  }
}

TEST(CorpusV3, OrphanSweepCoversSuffixedAndLegacyTmpNames) {
  const std::string dir = temp_dir();
  { const CorpusStore create(dir); }  // not strictly needed: mkdtemp made it
  // Legacy bare-marker and dead-pid temps are orphans; a temp owned by a
  // live pid (ours here) must survive the sweep -- its writer may still
  // be mid-save. 999999999 exceeds any kernel pid_max, so kill() reports
  // ESRCH deterministically.
  const std::string live_name =
      "aaaa000000000004.cpg.tmp." + std::to_string(::getpid()) + ".5";
  for (const std::string& name :
       {std::string("aaaa000000000001.cpg.tmp"),
        std::string("aaaa000000000002.cpg.tmp.999999999.7"),
        std::string("aaaa000000000003.cpg.tmp.999999999.0"), live_name}) {
    std::FILE* f = std::fopen((dir + "/" + name).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("orphaned partial write", f);
    std::fclose(f);
  }
  const CorpusStore swept(dir);
  std::size_t remaining = 0;
  bool live_kept = false;
  if (DIR* d = opendir(dir.c_str())) {
    while (const dirent* entry = readdir(d)) {
      if (std::strstr(entry->d_name, ".cpg.tmp") != nullptr) {
        ++remaining;
        live_kept = live_kept || live_name == entry->d_name;
      }
    }
    closedir(d);
  }
  EXPECT_EQ(remaining, 1u);
  EXPECT_TRUE(live_kept);
}

// ---- Engine integration ----------------------------------------------------

constexpr const char* kPoolManifest = R"({
  "name": "v3pool",
  "base_seed": 5,
  "defaults": {"trials": 2, "epsilon": 0.15,
               "tester": ["planarity", "cycle_free", "bipartite"]},
  "cells": [
    {"scenario": "grid", "params": {"rows": [8, 10], "cols": 9}},
    {"scenario": "road_network",
     "params": {"rows": 12, "cols": 12, "flyovers": 10}},
    {"scenario": "random_planar", "params": {"n": 60}, "instances": 2},
    {"scenario": "grid", "params": {"rows": 7, "cols": 7},
     "tester": "stage1_partition"},
    {"scenario": "grid", "params": {"rows": 7, "cols": 7},
     "tester": "random_partition"}
  ]
})";

Manifest pool_manifest() {
  Manifest m;
  std::string err;
  EXPECT_TRUE(parse_manifest(kPoolManifest, &m, &err)) << err;
  return m;
}

TEST(Engine, MmapHitsAndStreamedMaterializationKeepAggregatesIdentical) {
  const Manifest m = pool_manifest();
  // Baseline: no corpus (GraphBuilder everywhere).
  BatchOptions plain;
  plain.threads = 2;
  const BatchResult base = run_batch(m, plain);
  const std::string base_json =
      render_aggregate_json(m, base, aggregate_cells(base));

  // First corpus run: streamable families go through save_stream + mmap,
  // the rest through build + save. Same aggregate bytes.
  BatchOptions with_corpus = plain;
  with_corpus.corpus_dir = temp_dir();
  const BatchResult first = run_batch(m, with_corpus);
  EXPECT_EQ(first.corpus.disk_hits, 0u);
  EXPECT_EQ(first.corpus.generated, first.corpus.unique_instances);
  EXPECT_EQ(render_aggregate_json(m, first, aggregate_cells(first)),
            base_json);

  // Second run: every instance is an mmap hit; still the same bytes, at
  // both thread counts.
  for (const unsigned threads : {1u, 4u}) {
    BatchOptions hit = with_corpus;
    hit.threads = threads;
    const BatchResult again = run_batch(m, hit);
    EXPECT_EQ(again.corpus.disk_hits, again.corpus.unique_instances);
    EXPECT_EQ(again.corpus.generated, 0u);
    EXPECT_EQ(render_aggregate_json(m, again, aggregate_cells(again)),
              base_json);
  }
}

TEST(Engine, PooledRunStateIsBitIdenticalToFreshState) {
  const Manifest m = pool_manifest();
  const std::vector<Job> jobs = expand_manifest(m);
  // One RunState reused across every job in sequence -- the worst case for
  // stale-buffer leakage (different graphs, testers and sizes back to
  // back) -- must reproduce fresh-state results field for field.
  RunState pooled;
  for (const Job& job : jobs) {
    const Graph g = build_instance(job.instance);
    const JobResult fresh = run_job(job, g);
    const JobResult reused = run_job(job, g, &pooled);
    ASSERT_FALSE(fresh.failed) << fresh.error;
    ASSERT_FALSE(reused.failed) << reused.error;
    EXPECT_EQ(reused.verdict, fresh.verdict) << job.job_index;
    EXPECT_EQ(reused.rounds, fresh.rounds) << job.job_index;
    EXPECT_EQ(reused.messages, fresh.messages) << job.job_index;
    EXPECT_EQ(reused.num_parts, fresh.num_parts) << job.job_index;
    EXPECT_EQ(reused.cut_edges, fresh.cut_edges) << job.job_index;
    EXPECT_EQ(reused.max_part_ecc, fresh.max_part_ecc) << job.job_index;
    EXPECT_EQ(reused.max_tree_depth, fresh.max_tree_depth) << job.job_index;
    EXPECT_EQ(reused.stage1_phases, fresh.stage1_phases) << job.job_index;
    EXPECT_EQ(reused.phase_stats.size(), fresh.phase_stats.size());
  }
  // And the batch engine (one pooled state per worker) agrees with itself
  // across a thread sweep.
  std::string golden;
  for (const unsigned threads : {1u, 2u, 4u}) {
    BatchOptions opt;
    opt.threads = threads;
    const BatchResult batch = run_batch(m, opt);
    const std::string json =
        render_aggregate_json(m, batch, aggregate_cells(batch));
    if (golden.empty()) {
      golden = json;
    } else {
      EXPECT_EQ(json, golden) << threads << " threads";
    }
  }
}

TEST(Engine, MaterializeManifestPopulatesTheCorpusWithoutRunningJobs) {
  const Manifest m = pool_manifest();
  BatchOptions opt;
  opt.threads = 2;
  opt.corpus_dir = temp_dir();
  const MaterializeResult mat = materialize_manifest(m, opt);
  EXPECT_EQ(mat.failed_instances, 0u);
  EXPECT_GT(mat.corpus.unique_instances, 0u);
  EXPECT_EQ(mat.corpus.generated, mat.corpus.unique_instances);
  EXPECT_EQ(mat.corpus.disk_hits, 0u);

  // Re-materializing is all hits; a subsequent run generates nothing.
  const MaterializeResult again = materialize_manifest(m, opt);
  EXPECT_EQ(again.corpus.disk_hits, again.corpus.unique_instances);
  EXPECT_EQ(again.corpus.generated, 0u);
  const BatchResult batch = run_batch(m, opt);
  EXPECT_EQ(batch.corpus.disk_hits, batch.corpus.unique_instances);
  EXPECT_EQ(batch.corpus.generated, 0u);
  EXPECT_EQ(batch.failed_jobs, 0u);
}

}  // namespace
}  // namespace cpt::scenario
