// Acceptance pin for the scenario engine (ISSUE 4): the shipped
// batch_sweep manifest expands to >= 200 simulations across >= 6 graph
// families, and the aggregate JSON is bit-identical between 1-thread and
// 4-thread batch runs. Also sanity-checks the aggregated semantics
// (one-sidedness on planar cells, detection on far cells).
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/aggregate.h"
#include "scenario/engine.h"
#include "scenario/manifest.h"

namespace cpt::scenario {
namespace {

#ifndef CPT_MANIFEST_DIR
#error "CPT_MANIFEST_DIR must point at bench/manifests"
#endif

TEST(ScenarioBatch, SweepManifestCoversTheAcceptanceMatrix) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(load_manifest_file(CPT_MANIFEST_DIR "/batch_sweep.json", &m,
                                 &err))
      << err;
  const std::vector<Job> jobs = expand_manifest(m);
  EXPECT_GE(jobs.size(), 200u);
  std::set<std::string> families;
  for (const Job& job : jobs) families.insert(job.instance.family);
  EXPECT_GE(families.size(), 6u) << "families covered: " << families.size();
}

TEST(ScenarioBatch, AggregateJsonBitIdenticalAcrossThreads) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(load_manifest_file(CPT_MANIFEST_DIR "/batch_sweep.json", &m,
                                 &err))
      << err;

  BatchOptions serial;
  serial.threads = 1;
  const BatchResult a = run_batch(m, serial);
  BatchOptions parallel;
  parallel.threads = 4;
  const BatchResult b = run_batch(m, parallel);

  ASSERT_GE(a.jobs.size(), 200u);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_EQ(b.threads_used, 4u);

  const std::vector<CellAggregate> cells_a = aggregate_cells(a);
  const std::vector<CellAggregate> cells_b = aggregate_cells(b);
  const std::string json_a = render_aggregate_json(m, a, cells_a);
  const std::string json_b = render_aggregate_json(m, b, cells_b);
  EXPECT_EQ(json_a, json_b);
  EXPECT_EQ(render_aggregate_csv(cells_a), render_aggregate_csv(cells_b));

  // Semantics: one-sidedness means planar-family planarity cells never
  // reject; the far families in the sweep must detect.
  for (const CellAggregate& cell : cells_a) {
    if (cell.tester != "planarity") continue;
    const bool planar_family =
        cell.scenario.rfind("grid(", 0) == 0 ||
        cell.scenario.rfind("triangulated_grid(", 0) == 0 ||
        cell.scenario.rfind("apollonian(", 0) == 0 ||
        (cell.scenario.rfind("random_planar(", 0) == 0 &&
         cell.scenario.find('+') == std::string::npos) ||
        cell.scenario.rfind("random_tree(", 0) == 0;
    if (planar_family && cell.scenario.find('+') == std::string::npos) {
      EXPECT_EQ(cell.rejects, 0u) << "one-sidedness violated: " << cell.key;
    }
    if (cell.scenario.rfind("k5_blobs(", 0) == 0 ||
        cell.scenario.find("+k33_blobs(") != std::string::npos) {
      EXPECT_EQ(cell.rejects, cell.jobs) << "missed detection: " << cell.key;
    }
  }
}

}  // namespace
}  // namespace cpt::scenario
