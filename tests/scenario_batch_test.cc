// Acceptance pin for the scenario engine (ISSUE 4): the shipped
// batch_sweep manifest expands to >= 200 simulations across >= 6 graph
// families, and the aggregate JSON is bit-identical between 1-thread and
// 4-thread batch runs. Also sanity-checks the aggregated semantics
// (one-sidedness on planar cells, detection on far cells).
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/aggregate.h"
#include "scenario/engine.h"
#include "scenario/manifest.h"

namespace cpt::scenario {
namespace {

#ifndef CPT_MANIFEST_DIR
#error "CPT_MANIFEST_DIR must point at bench/manifests"
#endif

TEST(ScenarioBatch, SweepManifestCoversTheAcceptanceMatrix) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(load_manifest_file(CPT_MANIFEST_DIR "/batch_sweep.json", &m,
                                 &err))
      << err;
  const std::vector<Job> jobs = expand_manifest(m);
  EXPECT_GE(jobs.size(), 200u);
  std::set<std::string> families;
  for (const Job& job : jobs) families.insert(job.instance.family);
  EXPECT_GE(families.size(), 6u) << "families covered: " << families.size();
}

// ISSUE 5 acceptance: the streamed aggregate (per-cell JSONL flushed as
// each sweep cell completes, per-job results never retained) is
// bit-identical to the in-memory aggregate on batch_sweep.json at
// --threads 1 and 4, with per-job result storage bounded by the reorder
// window + one open sweep cell.
TEST(ScenarioBatch, StreamedAggregateBitIdenticalToInMemory) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(load_manifest_file(CPT_MANIFEST_DIR "/batch_sweep.json", &m,
                                 &err))
      << err;
  const std::vector<Job> jobs = expand_manifest(m);

  struct StreamRun {
    std::string jsonl;
    std::string aggregate_json;
    std::size_t peak_pending = 0;
    std::size_t peak_open_cells = 0;
    std::size_t cells = 0;
  };
  const auto run_streamed = [&](unsigned threads) {
    StreamRun out;
    StreamingAggregator agg(jobs);
    out.jsonl = render_stream_header(m, jobs.size());
    agg.set_cell_sink([&](const CellAggregate& cell) {
      out.jsonl += render_stream_cell(cell);
    });
    BatchOptions opt;
    opt.threads = threads;
    StreamStats stats;
    const BatchResult batch = run_batch(
        m, opt,
        [&](const Job& job, const JobResult& result) {
          agg.consume(job, result);
        },
        &stats);
    EXPECT_TRUE(batch.results.empty());
    out.jsonl += render_stream_footer(batch, agg.finish().size());
    out.aggregate_json = render_aggregate_json(m, batch, agg.cells());
    out.peak_pending = stats.peak_pending_results;
    out.peak_open_cells = agg.peak_open_cells();
    out.cells = agg.cells().size();
    return out;
  };

  const StreamRun t1 = run_streamed(1);
  const StreamRun t4 = run_streamed(4);
  EXPECT_EQ(t1.jsonl, t4.jsonl);
  EXPECT_EQ(t1.aggregate_json, t4.aggregate_json);

  // In-memory reference: identical document.
  BatchOptions opt;
  opt.threads = 1;
  const BatchResult retained = run_batch(m, opt);
  EXPECT_EQ(render_aggregate_json(m, retained, aggregate_cells(retained)),
            t1.aggregate_json);

  // Bounded residency: expansion emits each cell's jobs contiguously, so
  // at most one cell buffers per-job values at a time, and the engine's
  // reorder window is O(batch threads) -- while the sweep itself is 200+
  // jobs over dozens of cells.
  EXPECT_GE(t4.cells, 25u);
  EXPECT_EQ(t1.peak_open_cells, 1u);
  EXPECT_LE(t4.peak_open_cells, 2u);
  EXPECT_LE(t1.peak_pending, 1u);
  EXPECT_LE(t4.peak_pending, 4u * 4u + 4u);
  // The streamed JSONL carries one line per cell plus header and footer.
  std::size_t lines = 0;
  for (const char c : t1.jsonl) lines += c == '\n';
  EXPECT_EQ(lines, t1.cells + 2);
}

TEST(ScenarioBatch, AggregateJsonBitIdenticalAcrossThreads) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(load_manifest_file(CPT_MANIFEST_DIR "/batch_sweep.json", &m,
                                 &err))
      << err;

  BatchOptions serial;
  serial.threads = 1;
  const BatchResult a = run_batch(m, serial);
  BatchOptions parallel;
  parallel.threads = 4;
  const BatchResult b = run_batch(m, parallel);

  ASSERT_GE(a.jobs.size(), 200u);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_EQ(b.threads_used, 4u);

  const std::vector<CellAggregate> cells_a = aggregate_cells(a);
  const std::vector<CellAggregate> cells_b = aggregate_cells(b);
  const std::string json_a = render_aggregate_json(m, a, cells_a);
  const std::string json_b = render_aggregate_json(m, b, cells_b);
  EXPECT_EQ(json_a, json_b);
  EXPECT_EQ(render_aggregate_csv(cells_a), render_aggregate_csv(cells_b));

  // Semantics: one-sidedness means planar-family planarity cells never
  // reject; the far families in the sweep must detect.
  for (const CellAggregate& cell : cells_a) {
    if (cell.tester != "planarity") continue;
    const bool planar_family =
        cell.scenario.rfind("grid(", 0) == 0 ||
        cell.scenario.rfind("triangulated_grid(", 0) == 0 ||
        cell.scenario.rfind("apollonian(", 0) == 0 ||
        (cell.scenario.rfind("random_planar(", 0) == 0 &&
         cell.scenario.find('+') == std::string::npos) ||
        cell.scenario.rfind("random_tree(", 0) == 0;
    if (planar_family && cell.scenario.find('+') == std::string::npos) {
      EXPECT_EQ(cell.rejects, 0u) << "one-sidedness violated: " << cell.key;
    }
    if (cell.scenario.rfind("k5_blobs(", 0) == 0 ||
        cell.scenario.find("+k33_blobs(") != std::string::npos) {
      EXPECT_EQ(cell.rejects, cell.jobs) << "missed detection: " << cell.key;
    }
  }
}

// Strict parsing of the core-allocation policy names: exact matches only,
// with round-trip through the canonical name.
TEST(ScenarioBatch, SimThreadsPolicyParsesStrictly) {
  const struct {
    const char* name;
    SimThreadsPolicy policy;
  } kNames[] = {
      {"manifest", SimThreadsPolicy::kManifest},
      {"serial-jobs-wide", SimThreadsPolicy::kSerialJobsWide},
      {"threaded-jobs-narrow", SimThreadsPolicy::kThreadedJobsNarrow},
      {"auto", SimThreadsPolicy::kAuto},
  };
  for (const auto& c : kNames) {
    SimThreadsPolicy got = SimThreadsPolicy::kManifest;
    EXPECT_TRUE(parse_sim_threads_policy(c.name, &got)) << c.name;
    EXPECT_EQ(got, c.policy) << c.name;
    EXPECT_STREQ(sim_threads_policy_name(c.policy), c.name);
  }
  for (const char* bad :
       {"", "Manifest", "serial", "serial-jobs-wide ", " auto", "auto\n",
        "threaded", "wide", "0", "serial_jobs_wide"}) {
    SimThreadsPolicy got = SimThreadsPolicy::kAuto;
    EXPECT_FALSE(parse_sim_threads_policy(bad, &got))
        << "accepted \"" << bad << '"';
    EXPECT_EQ(got, SimThreadsPolicy::kAuto) << "output clobbered on reject";
  }
}

// Every core-allocation policy must yield the same aggregate bytes as the
// serial manifest-policy run: policies only move wall clock, never results.
TEST(ScenarioBatch, AggregateJsonBitIdenticalAcrossPolicies) {
  Manifest m;
  std::string err;
  ASSERT_TRUE(load_manifest_file(CPT_MANIFEST_DIR "/batch_sweep.json", &m,
                                 &err))
      << err;

  BatchOptions serial;
  serial.threads = 1;
  const BatchResult ref = run_batch(m, serial);
  const std::string ref_json =
      render_aggregate_json(m, ref, aggregate_cells(ref));
  EXPECT_EQ(ref.sim_threads_policy, SimThreadsPolicy::kManifest);

  for (const SimThreadsPolicy policy :
       {SimThreadsPolicy::kSerialJobsWide, SimThreadsPolicy::kThreadedJobsNarrow,
        SimThreadsPolicy::kAuto}) {
    SCOPED_TRACE(sim_threads_policy_name(policy));
    BatchOptions opt;
    opt.threads = 4;
    opt.sim_threads_policy = policy;
    const BatchResult b = run_batch(m, opt);
    ASSERT_EQ(b.jobs.size(), ref.jobs.size());
    EXPECT_EQ(render_aggregate_json(m, b, aggregate_cells(b)), ref_json);
    if (policy == SimThreadsPolicy::kAuto) {
      // batch_sweep has >= 200 jobs, far more than 4 cores: auto must
      // resolve to serial-jobs-wide and use the full batch width.
      EXPECT_EQ(b.sim_threads_policy, SimThreadsPolicy::kSerialJobsWide);
      EXPECT_EQ(b.threads_used, 4u);
    } else {
      EXPECT_EQ(b.sim_threads_policy, policy);
    }
  }
}

}  // namespace
}  // namespace cpt::scenario
