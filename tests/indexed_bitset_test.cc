#include "util/indexed_bitset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.h"

namespace cpt {
namespace {

TEST(IndexedBitset, InsertContainsErase) {
  IndexedBitset s(1000);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(42));
  EXPECT_FALSE(s.insert(42));  // duplicate
  EXPECT_TRUE(s.contains(42));
  EXPECT_FALSE(s.contains(41));
  EXPECT_EQ(s.size(), 1u);
  s.erase(42);
  EXPECT_FALSE(s.contains(42));
  EXPECT_TRUE(s.empty());
}

TEST(IndexedBitset, DrainsInSortedOrder) {
  IndexedBitset s(1 << 20);
  const std::vector<std::size_t> values = {999999, 0, 63, 64, 65, 4096, 4095,
                                           123456, 1, 2};
  for (const auto v : values) s.insert(v);
  std::vector<std::size_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::size_t> drained;
  while (!s.empty()) {
    EXPECT_EQ(s.front(), sorted[drained.size()]);
    drained.push_back(s.pop_front());
  }
  EXPECT_EQ(drained, sorted);
}

TEST(IndexedBitset, InterleavedInsertBelowMinimum) {
  IndexedBitset s(1 << 18);
  s.insert(100000);
  EXPECT_EQ(s.front(), 100000u);
  s.insert(5);  // below the scan cursors
  EXPECT_EQ(s.front(), 5u);
  EXPECT_EQ(s.pop_front(), 5u);
  EXPECT_EQ(s.pop_front(), 100000u);
  EXPECT_TRUE(s.empty());
}

TEST(IndexedBitset, RandomizedAgainstStdSet) {
  IndexedBitset s(1 << 16);
  std::set<std::size_t> ref;
  Rng rng(7);
  for (int step = 0; step < 20000; ++step) {
    const auto op = rng.next_below(4);
    const std::size_t v = rng.next_below(1 << 16);
    if (op == 0) {
      EXPECT_EQ(s.insert(v), ref.insert(v).second);
    } else if (op == 1 && !ref.empty()) {
      EXPECT_EQ(s.front(), *ref.begin());
      EXPECT_EQ(s.pop_front(), *ref.begin());
      ref.erase(ref.begin());
    } else if (op == 2) {
      EXPECT_EQ(s.contains(v), ref.count(v) > 0);
    } else if (op == 3 && ref.count(v) > 0) {
      s.erase(v);
      ref.erase(v);
    }
    EXPECT_EQ(s.size(), ref.size());
  }
  while (!ref.empty()) {
    EXPECT_EQ(s.pop_front(), *ref.begin());
    ref.erase(ref.begin());
  }
  EXPECT_TRUE(s.empty());
}

TEST(IndexedBitset, ClearIsReusable) {
  IndexedBitset s(512);
  for (std::size_t i = 0; i < 512; i += 3) s.insert(i);
  s.clear();
  EXPECT_TRUE(s.empty());
  s.insert(511);
  s.insert(0);
  EXPECT_EQ(s.pop_front(), 0u);
  EXPECT_EQ(s.pop_front(), 511u);
}

TEST(IndexedBitset, TinyAndBoundaryCapacities) {
  IndexedBitset s(1);
  EXPECT_TRUE(s.insert(0));
  EXPECT_EQ(s.front(), 0u);
  s.clear();
  s.reset(65);  // straddles one level-0 word boundary
  EXPECT_TRUE(s.insert(64));
  EXPECT_TRUE(s.insert(63));
  EXPECT_EQ(s.pop_front(), 63u);
  EXPECT_EQ(s.pop_front(), 64u);
}

}  // namespace
}  // namespace cpt
