#include "util/indexed_bitset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.h"

namespace cpt {
namespace {

TEST(IndexedBitset, InsertContainsErase) {
  IndexedBitset s(1000);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(42));
  EXPECT_FALSE(s.insert(42));  // duplicate
  EXPECT_TRUE(s.contains(42));
  EXPECT_FALSE(s.contains(41));
  EXPECT_EQ(s.size(), 1u);
  s.erase(42);
  EXPECT_FALSE(s.contains(42));
  EXPECT_TRUE(s.empty());
}

TEST(IndexedBitset, DrainsInSortedOrder) {
  IndexedBitset s(1 << 20);
  const std::vector<std::size_t> values = {999999, 0, 63, 64, 65, 4096, 4095,
                                           123456, 1, 2};
  for (const auto v : values) s.insert(v);
  std::vector<std::size_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::size_t> drained;
  while (!s.empty()) {
    EXPECT_EQ(s.front(), sorted[drained.size()]);
    drained.push_back(s.pop_front());
  }
  EXPECT_EQ(drained, sorted);
}

TEST(IndexedBitset, InterleavedInsertBelowMinimum) {
  IndexedBitset s(1 << 18);
  s.insert(100000);
  EXPECT_EQ(s.front(), 100000u);
  s.insert(5);  // below the scan cursors
  EXPECT_EQ(s.front(), 5u);
  EXPECT_EQ(s.pop_front(), 5u);
  EXPECT_EQ(s.pop_front(), 100000u);
  EXPECT_TRUE(s.empty());
}

TEST(IndexedBitset, RandomizedAgainstStdSet) {
  IndexedBitset s(1 << 16);
  std::set<std::size_t> ref;
  Rng rng(7);
  for (int step = 0; step < 20000; ++step) {
    const auto op = rng.next_below(4);
    const std::size_t v = rng.next_below(1 << 16);
    if (op == 0) {
      EXPECT_EQ(s.insert(v), ref.insert(v).second);
    } else if (op == 1 && !ref.empty()) {
      EXPECT_EQ(s.front(), *ref.begin());
      EXPECT_EQ(s.pop_front(), *ref.begin());
      ref.erase(ref.begin());
    } else if (op == 2) {
      EXPECT_EQ(s.contains(v), ref.count(v) > 0);
    } else if (op == 3 && ref.count(v) > 0) {
      s.erase(v);
      ref.erase(v);
    }
    EXPECT_EQ(s.size(), ref.size());
  }
  while (!ref.empty()) {
    EXPECT_EQ(s.pop_front(), *ref.begin());
    ref.erase(ref.begin());
  }
  EXPECT_TRUE(s.empty());
}

TEST(IndexedBitset, ClearIsReusable) {
  IndexedBitset s(512);
  for (std::size_t i = 0; i < 512; i += 3) s.insert(i);
  s.clear();
  EXPECT_TRUE(s.empty());
  s.insert(511);
  s.insert(0);
  EXPECT_EQ(s.pop_front(), 0u);
  EXPECT_EQ(s.pop_front(), 511u);
}

TEST(IndexedBitset, UnionFromEmptyAndFull) {
  IndexedBitset a(1 << 12);
  IndexedBitset b(1 << 12);
  EXPECT_EQ(a.union_from(b), 0u);  // empty source: no-op
  EXPECT_TRUE(a.empty());
  for (std::size_t i = 0; i < (1 << 12); ++i) b.insert(i);
  EXPECT_EQ(a.union_from(b), std::size_t{1} << 12);  // full source
  EXPECT_EQ(a.size(), std::size_t{1} << 12);
  // Unioning again adds nothing (every bit already present).
  EXPECT_EQ(a.union_from(b), 0u);
  EXPECT_EQ(a.size(), std::size_t{1} << 12);
  for (std::size_t i = 0; i < (1 << 12); ++i) EXPECT_EQ(a.pop_front(), i);
}

TEST(IndexedBitset, UnionRangeMasksBoundaryWords) {
  // Range ends straddling level-0 (64), level-1 (4096) and level-2
  // (262144) word boundaries: neighbours of the range must be untouched.
  const std::size_t cap = 1 << 19;
  for (const std::size_t b :
       {std::size_t{64}, std::size_t{4096}, std::size_t{262144}}) {
    IndexedBitset src(cap);
    for (std::size_t i = b - 2; i <= b + 1; ++i) src.insert(i);
    IndexedBitset dst(cap);
    EXPECT_EQ(dst.union_range_from(src, b - 1, b + 1), 2u) << b;
    EXPECT_FALSE(dst.contains(b - 2)) << b;
    EXPECT_TRUE(dst.contains(b - 1)) << b;
    EXPECT_TRUE(dst.contains(b)) << b;
    EXPECT_FALSE(dst.contains(b + 1)) << b;
    // Empty range and empty intersection are no-ops.
    EXPECT_EQ(dst.union_range_from(src, b, b), 0u);
    EXPECT_EQ(dst.union_range_from(src, b + 2, b + 10), 0u);
  }
}

TEST(IndexedBitset, UnionMatchesInsertLoopRandomized) {
  const std::size_t cap = 1 << 16;
  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    IndexedBitset a(cap);
    IndexedBitset b(cap);
    std::set<std::size_t> ref;
    for (int i = 0; i < 300; ++i) a.insert(rng.next_below(cap));
    for (int i = 0; i < 300; ++i) b.insert(rng.next_below(cap));
    const std::size_t lo = rng.next_below(cap);
    const std::size_t hi = lo + rng.next_below(cap - lo + 1);
    std::size_t pre = 0;
    // Reference: b's members in [lo, hi); `pre` counts those already in a.
    for (std::size_t v = b.next_at_least(lo);
         v != IndexedBitset::kNone && v < hi; v = b.next_at_least(v + 1)) {
      ref.insert(v);
    }
    for (const std::size_t v : ref) {
      if (a.contains(v)) ++pre;
    }
    const std::size_t added = a.union_range_from(b, lo, hi);
    EXPECT_EQ(added, ref.size() - pre);
    for (const std::size_t v : ref) EXPECT_TRUE(a.contains(v));
    // Cursor correctness: the minimum is still extracted first.
    std::size_t prev = 0;
    bool first = true;
    while (!a.empty()) {
      const std::size_t v = a.pop_front();
      EXPECT_TRUE(first || v > prev);
      prev = v;
      first = false;
    }
  }
}

TEST(IndexedBitset, ForEachWordMatchesPerBitIteration) {
  const std::size_t cap = 1 << 18;
  IndexedBitset s(cap);
  Rng rng(13);
  std::set<std::size_t> ref;
  for (int i = 0; i < 5000; ++i) {
    const std::size_t v = rng.next_below(cap);
    s.insert(v);
    ref.insert(v);
  }
  std::vector<std::size_t> visited;
  std::size_t last_word = 0;
  bool first = true;
  s.for_each_word([&](std::size_t w, std::uint64_t bits) {
    EXPECT_NE(bits, 0u);                       // only nonzero words
    EXPECT_TRUE(first || w > last_word);       // increasing word order
    first = false;
    last_word = w;
    for (std::uint64_t m = bits; m != 0; m &= m - 1) {
      visited.push_back((w << 6) +
                        static_cast<std::size_t>(std::countr_zero(m)));
    }
  });
  EXPECT_EQ(visited, std::vector<std::size_t>(ref.begin(), ref.end()));
  // Empty set: the visitor must not fire.
  s.clear();
  s.for_each_word([&](std::size_t, std::uint64_t) { FAIL(); });
}

TEST(IndexedBitset, ClearAfterUnionIsReusable) {
  IndexedBitset a(1 << 14);
  IndexedBitset b(1 << 14);
  for (std::size_t i = 0; i < (1 << 14); i += 7) b.insert(i);
  a.union_from(b);
  a.clear();
  EXPECT_TRUE(a.empty());
  a.insert(9);
  EXPECT_EQ(a.front(), 9u);
  EXPECT_EQ(a.union_from(b), b.size());
  EXPECT_EQ(a.size(), b.size() + 1);
}

TEST(IndexedBitset, TinyAndBoundaryCapacities) {
  IndexedBitset s(1);
  EXPECT_TRUE(s.insert(0));
  EXPECT_EQ(s.front(), 0u);
  s.clear();
  s.reset(65);  // straddles one level-0 word boundary
  EXPECT_TRUE(s.insert(64));
  EXPECT_TRUE(s.insert(63));
  EXPECT_EQ(s.pop_front(), 63u);
  EXPECT_EQ(s.pop_front(), 64u);
}

}  // namespace
}  // namespace cpt
