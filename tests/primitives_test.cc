#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "congest/network.h"
#include "congest/primitives.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/properties.h"
#include "tests/test_util.h"

namespace cpt::congest {
namespace {

using testutil::whole_graph_parts;

struct Fixture {
  Graph g;
  Network net;
  Simulator sim;
  PartForest pf;

  explicit Fixture(Graph graph)
      : g(std::move(graph)), net(g), sim(net), pf(whole_graph_parts(g)) {}

  TreeView tree() { return TreeView{&pf.parent_edge, &pf.children, nullptr}; }
};

TEST(ConvergeRecords, SumsUpTheTree) {
  Fixture f(gen::binary_tree(15));
  ConvergeRecords conv(f.tree(), Combine::kSum, 0);
  for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
    conv.initial[v] = {{0, 1}, {1, static_cast<std::int64_t>(v)}};
  }
  const PassResult r = f.sim.run(conv);
  EXPECT_TRUE(r.quiesced);
  const auto& at_root = conv.at_root(0);
  std::int64_t count = 0;
  std::int64_t sum = 0;
  for (const Record& rec : at_root) {
    if (rec.key == 0) count = rec.value;
    if (rec.key == 1) sum = rec.value;
  }
  EXPECT_EQ(count, 15);
  EXPECT_EQ(sum, 15 * 14 / 2);
}

TEST(ConvergeRecords, MinAndMax) {
  Fixture f(gen::path(20));
  {
    ConvergeRecords conv(f.tree(), Combine::kMin, 0);
    for (NodeId v = 0; v < 20; ++v) {
      conv.initial[v] = {{0, 100 - static_cast<std::int64_t>(v)}};
    }
    f.sim.run(conv);
    EXPECT_EQ(conv.at_root(0)[0].value, 81);
  }
  {
    ConvergeRecords conv(f.tree(), Combine::kMax, 0);
    for (NodeId v = 0; v < 20; ++v) {
      conv.initial[v] = {{0, static_cast<std::int64_t>(v) % 7}};
    }
    f.sim.run(conv);
    EXPECT_EQ(conv.at_root(0)[0].value, 6);
  }
}

TEST(ConvergeRecords, CapTriggersOverflow) {
  Fixture f(gen::star(10));  // root 0, leaves 1..9
  ConvergeRecords conv(f.tree(), Combine::kSum, 4);
  for (NodeId v = 1; v < 10; ++v) {
    conv.initial[v] = {{v, 1}};  // 9 distinct keys > cap 4
  }
  f.sim.run(conv);
  EXPECT_TRUE(conv.overflowed(0));
}

TEST(ConvergeRecords, CapNotTriggeredAtBoundary) {
  Fixture f(gen::star(5));
  ConvergeRecords conv(f.tree(), Combine::kSum, 4);
  for (NodeId v = 1; v < 5; ++v) conv.initial[v] = {{v, 2}};
  f.sim.run(conv);
  EXPECT_FALSE(conv.overflowed(0));
  EXPECT_EQ(conv.at_root(0).size(), 4u);
}

TEST(ConvergeRecords, RoundsScaleWithDepthAndRecords) {
  Fixture f(gen::path(30));
  ConvergeRecords conv(f.tree(), Combine::kSum, 0);
  for (NodeId v = 0; v < 30; ++v) conv.initial[v] = {{0, 1}};
  const PassResult r = f.sim.run(conv);
  // Store-and-forward of 2 messages (1 record + DONE) per level: ~2*depth.
  EXPECT_GE(r.rounds, 29u);
  EXPECT_LE(r.rounds, 2u * 29u + 2u);
}

TEST(BroadcastRecords, StreamsReachAllNodesInOrder) {
  Fixture f(gen::binary_tree(31));
  BroadcastRecords bc(f.tree());
  bc.stream[0] = {{1, 10}, {2, 20}, {3, 30}};
  const PassResult r = f.sim.run(bc);
  EXPECT_TRUE(r.quiesced);
  for (NodeId v = 1; v < 31; ++v) {
    ASSERT_EQ(bc.received[v].size(), 3u) << "node " << v;
    EXPECT_EQ(bc.received[v][0].key, 1u);
    EXPECT_EQ(bc.received[v][1].key, 2u);
    EXPECT_EQ(bc.received[v][2].key, 3u);
    EXPECT_EQ(bc.received[v][2].value, 30);
  }
  // Pipelined: depth + stream length, not depth * length.
  EXPECT_LE(r.rounds, 4u + 3u + 2u);
}

TEST(BroadcastRecords, EmptyStreamsAreFree) {
  Fixture f(gen::binary_tree(7));
  BroadcastRecords bc(f.tree());
  const PassResult r = f.sim.run(bc);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_EQ(r.messages, 0u);
}

std::vector<std::pair<std::uint64_t, std::int64_t>> sorted_pairs(
    RecordTable::ConstRow row) {
  std::vector<std::pair<std::uint64_t, std::int64_t>> out;
  for (const Record& r : row) out.push_back({r.key, r.value});
  std::sort(out.begin(), out.end());
  return out;
}

// ---- Deep-tree stress for the pipelined streams --------------------------

TEST(ConvergeRecords, PipelinedMatchesUnpipelinedOnDeepPath) {
  // Path tree with 10^4 nodes: the worst store-and-forward depth. The
  // pipelined mode must produce the identical merged set at the root with
  // strictly fewer rounds and messages (the folded DONE markers).
  const NodeId n = 10000;
  Fixture f(gen::path(n));
  std::vector<std::pair<std::uint64_t, std::int64_t>> results[2];
  PassResult pr[2];
  int i = 0;
  for (const bool pipelined : {false, true}) {
    ConvergeRecords conv;
    conv.reset(f.tree(), Combine::kSum, 0, nullptr, pipelined);
    for (NodeId v = 0; v < n; ++v) {
      conv.initial[v] = {{0, 1}, {1 + v % 3, static_cast<std::int64_t>(v)}};
    }
    pr[i] = f.sim.run(conv);
    EXPECT_TRUE(pr[i].quiesced);
    results[i] = sorted_pairs(conv.at_root(0));
    ++i;
  }
  EXPECT_EQ(results[0], results[1]);
  ASSERT_EQ(results[0].size(), 4u);  // keys 0, 1, 2, 3
  EXPECT_EQ(results[0][0], (std::pair<std::uint64_t, std::int64_t>{0, n}));
  EXPECT_LT(pr[1].rounds, pr[0].rounds);
  EXPECT_LT(pr[1].messages, pr[0].messages);
  EXPECT_GE(pr[1].rounds, static_cast<std::uint64_t>(n - 1));  // depth floor
}

TEST(ConvergeRecords, CapOneOverflowCascadesOnDeepPath) {
  // cap = 1 with a distinct key per node: every internal node's merged set
  // exceeds the cap, so the single overflow record cascades 10^4 levels.
  // Both modes must agree on the overflow verdict; the pipelined stream
  // (one LAST record per edge instead of record + DONE) halves the rounds.
  const NodeId n = 10000;
  Fixture f(gen::path(n));
  PassResult pr[2];
  int i = 0;
  for (const bool pipelined : {false, true}) {
    ConvergeRecords conv;
    conv.reset(f.tree(), Combine::kSum, 1, nullptr, pipelined);
    for (NodeId v = 0; v < n; ++v) {
      conv.initial[v] = {{v, 1}};
    }
    pr[i] = f.sim.run(conv);
    EXPECT_TRUE(pr[i].quiesced);
    EXPECT_TRUE(conv.overflowed(0));
    ++i;
  }
  // Unpipelined: overflow record + DONE per edge; pipelined: one LAST per
  // edge. Exact counts pin the stream schedule.
  EXPECT_EQ(pr[0].messages, 2u * (n - 1));
  EXPECT_EQ(pr[1].messages, static_cast<std::uint64_t>(n - 1));
  EXPECT_LT(pr[1].rounds, pr[0].rounds);
}

TEST(ConvergeRecords, StreamsLongerThanCapStayCapped) {
  // Merged sets larger than the cap never travel: the outgoing stream of
  // an overflowed node is a single record in either mode.
  Fixture f(gen::star(12));
  for (const bool pipelined : {false, true}) {
    ConvergeRecords conv;
    conv.reset(f.tree(), Combine::kSum, 4, nullptr, pipelined);
    for (NodeId v = 1; v < 12; ++v) conv.initial[v] = {{v, 1}};
    const PassResult r = f.sim.run(conv);
    EXPECT_TRUE(conv.overflowed(0));
    // 11 leaves, one record each (pipelined folds DONE; legacy adds it).
    EXPECT_EQ(r.messages, pipelined ? 11u : 22u);
  }
}

TEST(ConvergeRecords, AllEmptyInitialCostsIdenticalRoundsInBothModes) {
  // Bare DONE streams have nothing to fold: the pipelined schedule must
  // degenerate to exactly the legacy one.
  Fixture f(gen::binary_tree(127));
  PassResult pr[2];
  int i = 0;
  for (const bool pipelined : {false, true}) {
    ConvergeRecords conv;
    conv.reset(f.tree(), Combine::kSum, 0, nullptr, pipelined);
    pr[i] = f.sim.run(conv);
    EXPECT_TRUE(conv.at_root(0).empty());
    EXPECT_FALSE(conv.overflowed(0));
    ++i;
  }
  EXPECT_EQ(pr[0].rounds, pr[1].rounds);
  EXPECT_EQ(pr[0].messages, pr[1].messages);
  EXPECT_EQ(pr[0].messages, 126u);  // one DONE per tree edge
}

TEST(BroadcastRecords, PipelinedDeepStreamMatchesUnpipelined) {
  const NodeId n = 10000;
  const std::uint64_t len = 64;
  Fixture f(gen::path(n));
  PassResult pr[2];
  int i = 0;
  for (const bool pipelined : {false, true}) {
    BroadcastRecords bc;
    bc.reset(f.tree(), nullptr, pipelined);
    for (std::uint64_t k = 0; k < len; ++k) {
      bc.stream[0].push_back({k, static_cast<std::int64_t>(10 * k)});
    }
    pr[i] = f.sim.run(bc);
    EXPECT_TRUE(pr[i].quiesced);
    // Every node sees the full stream in order.
    ASSERT_EQ(bc.received[n - 1].size(), len);
    std::uint64_t k = 0;
    for (const Record& r : bc.received[n - 1]) {
      EXPECT_EQ(r.key, k);
      EXPECT_EQ(r.value, static_cast<std::int64_t>(10 * k));
      ++k;
    }
    ++i;
  }
  // Exact per-edge counts: len + end marker unpipelined, len pipelined.
  EXPECT_EQ(pr[0].messages, (len + 1) * (n - 1));
  EXPECT_EQ(pr[1].messages, len * (n - 1));
  EXPECT_LT(pr[1].rounds, pr[0].rounds);
  EXPECT_GE(pr[1].rounds, static_cast<std::uint64_t>(n - 1));
}

TEST(BroadcastRecords, EmptyRootsAndChildlessRootsAreFreeInBothModes) {
  for (const bool pipelined : {false, true}) {
    {
      // No streams at all.
      Fixture f(gen::binary_tree(7));
      BroadcastRecords bc;
      bc.reset(f.tree(), nullptr, pipelined);
      const PassResult r = f.sim.run(bc);
      EXPECT_EQ(r.rounds, 0u);
      EXPECT_EQ(r.messages, 0u);
    }
    {
      // A childless root with a non-empty stream has nowhere to send.
      Fixture f(gen::path(1));
      BroadcastRecords bc;
      bc.reset(f.tree(), nullptr, pipelined);
      bc.stream[0] = {{1, 2}, {3, 4}};
      const PassResult r = f.sim.run(bc);
      EXPECT_EQ(r.rounds, 0u);
      EXPECT_EQ(r.messages, 0u);
    }
  }
}

TEST(BroadcastRecords, RootsListSkipsTheFullSweepWithoutChangingResults) {
  // Handing TreeView a live-roots list must not change what is delivered.
  Fixture f(gen::binary_tree(31));
  const std::vector<NodeId> roots{0};
  for (const bool use_roots : {false, true}) {
    BroadcastRecords bc;
    TreeView tree = f.tree();
    if (use_roots) tree.roots = &roots;
    bc.reset(tree, nullptr, /*pipelined=*/true);
    bc.stream[0] = {{1, 10}, {2, 20}};
    const PassResult r = f.sim.run(bc);
    EXPECT_TRUE(r.quiesced);
    for (NodeId v = 1; v < 31; ++v) {
      ASSERT_EQ(bc.received[v].size(), 2u) << "node " << v;
      EXPECT_EQ(bc.received[v][0].key, 1u);
      EXPECT_EQ(bc.received[v][1].key, 2u);
    }
  }
}

TEST(Exchange, OneRoundNeighborInfo) {
  Fixture f(gen::cycle(6));
  std::vector<int> received(6, 0);
  Exchange ex(
      6,
      [&](NodeId v, std::vector<std::pair<std::uint32_t, Msg>>& out) {
        for (std::uint32_t p = 0; p < f.net.port_count(v); ++p) {
          out.push_back({p, Msg::make(9, static_cast<std::int64_t>(v))});
        }
      },
      [&](Exec&, NodeId v, std::span<const Inbound> inbox) {
        for (const Inbound& in : inbox) {
          received[v] += static_cast<int>(in.msg.w[0]) + 1;
        }
      });
  const PassResult r = f.sim.run(ex);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_EQ(r.messages, 12u);
  for (NodeId v = 0; v < 6; ++v) {
    const int left = static_cast<int>((v + 5) % 6) + 1;
    const int right = static_cast<int>((v + 1) % 6) + 1;
    EXPECT_EQ(received[v], left + right);
  }
}

TEST(BfsForest, LevelsMatchBfsDistances) {
  const Graph g = gen::triangulated_grid(6, 7);
  Network net(g);
  Simulator sim(net);
  std::vector<NodeId> part_root(g.num_nodes(), 0);
  BfsForest bfs(part_root);
  const PassResult r = sim.run(bfs);
  EXPECT_TRUE(r.quiesced);
  const auto dist = bfs_distances(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(bfs.level[v], dist[v]) << "node " << v;
    if (v != 0) {
      ASSERT_NE(bfs.parent_edge[v], kNoEdge);
      const NodeId p = g.other_endpoint(bfs.parent_edge[v], v);
      EXPECT_EQ(bfs.level[p] + 1, bfs.level[v]);
      // Parent lists v as a child.
      const auto& pc = bfs.children[p];
      EXPECT_NE(std::find(pc.begin(), pc.end(), bfs.parent_edge[v]), pc.end());
    }
  }
}

TEST(BfsForest, RespectsPartBoundaries) {
  // Two 3x3 grids joined by one edge; parts split along it.
  const Graph base = gen::disjoint_copies(gen::grid(3, 3), 2);
  const std::vector<Endpoints> bridge = {{4, 13}};
  const Graph g = add_edges(base, bridge);
  std::vector<NodeId> part_root(g.num_nodes());
  for (NodeId v = 0; v < 9; ++v) part_root[v] = 0;
  for (NodeId v = 9; v < 18; ++v) part_root[v] = 9;
  Network net(g);
  Simulator sim(net);
  BfsForest bfs(part_root);
  sim.run(bfs);
  for (NodeId v = 0; v < 18; ++v) {
    if (v == 0 || v == 9) {
      EXPECT_EQ(bfs.parent_edge[v], kNoEdge);
      continue;
    }
    const NodeId p = g.other_endpoint(bfs.parent_edge[v], v);
    EXPECT_EQ(part_root[p], part_root[v]) << "tree edge crosses parts";
  }
}

}  // namespace
}  // namespace cpt::congest
