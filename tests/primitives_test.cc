#include <gtest/gtest.h>

#include <algorithm>

#include "congest/network.h"
#include "congest/primitives.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/properties.h"
#include "tests/test_util.h"

namespace cpt::congest {
namespace {

using testutil::whole_graph_parts;

struct Fixture {
  Graph g;
  Network net;
  Simulator sim;
  PartForest pf;

  explicit Fixture(Graph graph)
      : g(std::move(graph)), net(g), sim(net), pf(whole_graph_parts(g)) {}

  TreeView tree() { return TreeView{&pf.parent_edge, &pf.children, nullptr}; }
};

TEST(ConvergeRecords, SumsUpTheTree) {
  Fixture f(gen::binary_tree(15));
  ConvergeRecords conv(f.tree(), Combine::kSum, 0);
  for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
    conv.initial[v] = {{0, 1}, {1, static_cast<std::int64_t>(v)}};
  }
  const PassResult r = f.sim.run(conv);
  EXPECT_TRUE(r.quiesced);
  const auto& at_root = conv.at_root(0);
  std::int64_t count = 0;
  std::int64_t sum = 0;
  for (const Record& rec : at_root) {
    if (rec.key == 0) count = rec.value;
    if (rec.key == 1) sum = rec.value;
  }
  EXPECT_EQ(count, 15);
  EXPECT_EQ(sum, 15 * 14 / 2);
}

TEST(ConvergeRecords, MinAndMax) {
  Fixture f(gen::path(20));
  {
    ConvergeRecords conv(f.tree(), Combine::kMin, 0);
    for (NodeId v = 0; v < 20; ++v) {
      conv.initial[v] = {{0, 100 - static_cast<std::int64_t>(v)}};
    }
    f.sim.run(conv);
    EXPECT_EQ(conv.at_root(0)[0].value, 81);
  }
  {
    ConvergeRecords conv(f.tree(), Combine::kMax, 0);
    for (NodeId v = 0; v < 20; ++v) {
      conv.initial[v] = {{0, static_cast<std::int64_t>(v) % 7}};
    }
    f.sim.run(conv);
    EXPECT_EQ(conv.at_root(0)[0].value, 6);
  }
}

TEST(ConvergeRecords, CapTriggersOverflow) {
  Fixture f(gen::star(10));  // root 0, leaves 1..9
  ConvergeRecords conv(f.tree(), Combine::kSum, 4);
  for (NodeId v = 1; v < 10; ++v) {
    conv.initial[v] = {{v, 1}};  // 9 distinct keys > cap 4
  }
  f.sim.run(conv);
  EXPECT_TRUE(conv.overflowed(0));
}

TEST(ConvergeRecords, CapNotTriggeredAtBoundary) {
  Fixture f(gen::star(5));
  ConvergeRecords conv(f.tree(), Combine::kSum, 4);
  for (NodeId v = 1; v < 5; ++v) conv.initial[v] = {{v, 2}};
  f.sim.run(conv);
  EXPECT_FALSE(conv.overflowed(0));
  EXPECT_EQ(conv.at_root(0).size(), 4u);
}

TEST(ConvergeRecords, RoundsScaleWithDepthAndRecords) {
  Fixture f(gen::path(30));
  ConvergeRecords conv(f.tree(), Combine::kSum, 0);
  for (NodeId v = 0; v < 30; ++v) conv.initial[v] = {{0, 1}};
  const PassResult r = f.sim.run(conv);
  // Store-and-forward of 2 messages (1 record + DONE) per level: ~2*depth.
  EXPECT_GE(r.rounds, 29u);
  EXPECT_LE(r.rounds, 2u * 29u + 2u);
}

TEST(BroadcastRecords, StreamsReachAllNodesInOrder) {
  Fixture f(gen::binary_tree(31));
  BroadcastRecords bc(f.tree());
  bc.stream[0] = {{1, 10}, {2, 20}, {3, 30}};
  const PassResult r = f.sim.run(bc);
  EXPECT_TRUE(r.quiesced);
  for (NodeId v = 1; v < 31; ++v) {
    ASSERT_EQ(bc.received[v].size(), 3u) << "node " << v;
    EXPECT_EQ(bc.received[v][0].key, 1u);
    EXPECT_EQ(bc.received[v][1].key, 2u);
    EXPECT_EQ(bc.received[v][2].key, 3u);
    EXPECT_EQ(bc.received[v][2].value, 30);
  }
  // Pipelined: depth + stream length, not depth * length.
  EXPECT_LE(r.rounds, 4u + 3u + 2u);
}

TEST(BroadcastRecords, EmptyStreamsAreFree) {
  Fixture f(gen::binary_tree(7));
  BroadcastRecords bc(f.tree());
  const PassResult r = f.sim.run(bc);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_EQ(r.messages, 0u);
}

TEST(Exchange, OneRoundNeighborInfo) {
  Fixture f(gen::cycle(6));
  std::vector<int> received(6, 0);
  Exchange ex(
      6,
      [&](NodeId v, std::vector<std::pair<std::uint32_t, Msg>>& out) {
        for (std::uint32_t p = 0; p < f.net.port_count(v); ++p) {
          out.push_back({p, Msg::make(9, static_cast<std::int64_t>(v))});
        }
      },
      [&](NodeId v, std::span<const Inbound> inbox) {
        for (const Inbound& in : inbox) {
          received[v] += static_cast<int>(in.msg.w[0]) + 1;
        }
      });
  const PassResult r = f.sim.run(ex);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_EQ(r.messages, 12u);
  for (NodeId v = 0; v < 6; ++v) {
    const int left = static_cast<int>((v + 5) % 6) + 1;
    const int right = static_cast<int>((v + 1) % 6) + 1;
    EXPECT_EQ(received[v], left + right);
  }
}

TEST(BfsForest, LevelsMatchBfsDistances) {
  const Graph g = gen::triangulated_grid(6, 7);
  Network net(g);
  Simulator sim(net);
  std::vector<NodeId> part_root(g.num_nodes(), 0);
  BfsForest bfs(part_root);
  const PassResult r = sim.run(bfs);
  EXPECT_TRUE(r.quiesced);
  const auto dist = bfs_distances(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(bfs.level[v], dist[v]) << "node " << v;
    if (v != 0) {
      ASSERT_NE(bfs.parent_edge[v], kNoEdge);
      const NodeId p = g.other_endpoint(bfs.parent_edge[v], v);
      EXPECT_EQ(bfs.level[p] + 1, bfs.level[v]);
      // Parent lists v as a child.
      const auto& pc = bfs.children[p];
      EXPECT_NE(std::find(pc.begin(), pc.end(), bfs.parent_edge[v]), pc.end());
    }
  }
}

TEST(BfsForest, RespectsPartBoundaries) {
  // Two 3x3 grids joined by one edge; parts split along it.
  const Graph base = gen::disjoint_copies(gen::grid(3, 3), 2);
  const std::vector<Endpoints> bridge = {{4, 13}};
  const Graph g = add_edges(base, bridge);
  std::vector<NodeId> part_root(g.num_nodes());
  for (NodeId v = 0; v < 9; ++v) part_root[v] = 0;
  for (NodeId v = 9; v < 18; ++v) part_root[v] = 9;
  Network net(g);
  Simulator sim(net);
  BfsForest bfs(part_root);
  sim.run(bfs);
  for (NodeId v = 0; v < 18; ++v) {
    if (v == 0 || v == 9) {
      EXPECT_EQ(bfs.parent_edge[v], kNoEdge);
      continue;
    }
    const NodeId p = g.other_endpoint(bfs.parent_edge[v], v);
    EXPECT_EQ(part_root[p], part_root[v]) << "tree edge crosses parts";
  }
}

}  // namespace
}  // namespace cpt::congest
