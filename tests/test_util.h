// Shared helpers for the test suite.
#pragma once

#include <queue>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "partition/part_forest.h"
#include "util/rng.h"

namespace cpt::testutil {

// A PartForest with one part per connected component, rooted at the
// smallest node id, spanned by a BFS tree. Used to drive Stage II directly.
inline PartForest whole_graph_parts(const Graph& g) {
  const NodeId n = g.num_nodes();
  PartForest pf;
  pf.root.assign(n, kNoNode);
  pf.parent_edge.assign(n, kNoEdge);
  pf.children.assign(n, {});
  pf.depth.assign(n, 0);
  pf.members.assign(n, {});
  for (NodeId s = 0; s < n; ++s) {
    if (pf.root[s] != kNoNode) continue;
    pf.root[s] = s;
    pf.members[s].push_back(s);
    std::queue<NodeId> q;
    q.push(s);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (const Arc& a : g.neighbors(v)) {
        if (pf.root[a.to] != kNoNode) continue;
        pf.root[a.to] = s;
        pf.parent_edge[a.to] = a.edge;
        pf.children[v].push_back(a.edge);
        pf.depth[a.to] = pf.depth[v] + 1;
        pf.members[s].push_back(a.to);
        q.push(a.to);
      }
    }
  }
  return pf;
}

// Named planar families for parameterized sweeps.
struct PlanarCase {
  std::string name;
  Graph graph;
};

inline std::vector<PlanarCase> planar_family(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<PlanarCase> cases;
  cases.push_back({"grid", gen::grid(9, 13)});
  cases.push_back({"trigrid", gen::triangulated_grid(8, 11)});
  cases.push_back({"cycle", gen::cycle(97)});
  cases.push_back({"path", gen::path(120)});
  cases.push_back({"tree", gen::random_tree(150, rng)});
  cases.push_back({"outerplanar", gen::outerplanar(80, 40, rng)});
  cases.push_back({"apollonian", gen::apollonian(130, rng)});
  cases.push_back({"random_planar", gen::random_planar(140, 300, rng)});
  cases.push_back({"k4", gen::complete(4)});
  return cases;
}

inline std::vector<PlanarCase> far_family(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<PlanarCase> cases;
  cases.push_back({"k5_union", gen::disjoint_copies(gen::complete(5), 40)});
  cases.push_back({"k33_union",
                   gen::disjoint_copies(gen::complete_bipartite(3, 3), 40)});
  cases.push_back({"k5_blobs", gen::planar_with_k5_blobs(200, 30, rng)});
  cases.push_back({"gnp_dense", gen::gnp(300, 12.0 / 300, rng)});
  cases.push_back({"k7", gen::complete(7)});
  cases.push_back({"hypercube5", gen::hypercube(5)});
  return cases;
}

}  // namespace cpt::testutil
