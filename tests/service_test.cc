// Service + result-cache suite (the cpt_serve PR): content-address
// round-trip through the persistent result cache, corrupt-entry
// self-healing, write-time FIFO eviction, engine-level cache hits pinned
// byte-identical to fresh execution at --threads 1 and 4 (with fully
// cached instances never materialized), thread- and process-concurrent
// cache hammering, and an end-to-end daemon exercise over a real
// Unix-domain socket: protocol errors, priority ordering, repeat sweeps
// served 100% from cache, and the cpt_batch thin client reproducing the
// serverless aggregate bytes.
#include <dirent.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/aggregate.h"
#include "scenario/engine.h"
#include "scenario/journal.h"
#include "scenario/json.h"
#include "scenario/manifest.h"
#include "scenario/result_cache.h"
#include "scenario/service.h"

namespace cpt::scenario {
namespace {

std::string temp_dir() {
  std::string t = testing::TempDir() + "cpt_serve_XXXXXX";
  EXPECT_NE(mkdtemp(t.data()), nullptr);
  return t;
}

constexpr const char* kManifest = R"({
  "name": "serve_suite",
  "base_seed": 11,
  "defaults": {"trials": 2, "epsilon": 0.15,
               "tester": ["planarity", "cycle_free"]},
  "cells": [
    {"scenario": "grid", "params": {"rows": [8, 10], "cols": 9}},
    {"scenario": "cycle", "params": {"n": 40},
     "perturb": {"kind": "k33_blobs", "count": 2},
     "tester": "planarity", "instances": 2}
  ]
})";

Manifest suite_manifest() {
  Manifest m;
  std::string err;
  EXPECT_TRUE(parse_manifest(kManifest, &m, &err)) << err;
  return m;
}

std::string aggregate_of(const Manifest& m, const BatchResult& batch) {
  return render_aggregate_json(m, batch, aggregate_cells(batch));
}

std::size_t count_entries(const std::string& dir, const char* infix) {
  std::size_t count = 0;
  if (DIR* d = opendir(dir.c_str())) {
    while (const dirent* entry = readdir(d)) {
      if (std::strstr(entry->d_name, infix) != nullptr) ++count;
    }
    closedir(d);
  }
  return count;
}

// ---- ResultCache unit behavior -------------------------------------------

TEST(ResultCache, RoundTripsResultsByContentAddress) {
  const std::string dir = temp_dir();
  const Manifest m = suite_manifest();
  const std::vector<Job> jobs = expand_manifest(m);
  const ResultCache cache(dir + "/cache");

  JobResult r;
  r.verdict = Verdict::kReject;
  r.n = 90;
  r.m = 160;
  r.rounds = 12;
  r.messages = 3456;
  r.num_parts = 4;
  r.cut_edges = 7;
  ASSERT_TRUE(cache.store(jobs[0], r));

  JobResult loaded;
  ASSERT_EQ(cache.load(jobs[0], &loaded), ResultCache::LoadStatus::kHit);
  // Byte-level equivalence via the canonical record rendering: everything
  // the journal round-trips, the cache round-trips.
  EXPECT_EQ(render_journal_record(jobs[0], loaded),
            render_journal_record(jobs[0], r));

  // Other jobs miss -- the key folds cell_key, instance hash and seed.
  EXPECT_EQ(cache.load(jobs[1], &loaded), ResultCache::LoadStatus::kMiss);

  EXPECT_GE(cache.counters().hits.load(), 1u);
  EXPECT_GE(cache.counters().misses.load(), 1u);
  EXPECT_EQ(cache.counters().stores.load(), 1u);
}

TEST(ResultCache, FailedResultsAreNeverStoredTimedOutAre) {
  const std::string dir = temp_dir();
  const Manifest m = suite_manifest();
  const std::vector<Job> jobs = expand_manifest(m);
  const ResultCache cache(dir);

  JobResult failed;
  failed.failed = true;
  failed.error = "transient something";
  EXPECT_FALSE(cache.store(jobs[0], failed));
  JobResult probe;
  EXPECT_EQ(cache.load(jobs[0], &probe), ResultCache::LoadStatus::kMiss);

  // A round-budget refusal is deterministic, so caching it is sound.
  JobResult timed_out;
  timed_out.timed_out = true;
  timed_out.error = "round budget exceeded";
  EXPECT_TRUE(cache.store(jobs[0], timed_out));
  ASSERT_EQ(cache.load(jobs[0], &probe), ResultCache::LoadStatus::kHit);
  EXPECT_TRUE(probe.timed_out);
  EXPECT_FALSE(probe.failed);
}

TEST(ResultCache, CorruptEntriesAreRemovedOnLoad) {
  const std::string dir = temp_dir();
  const Manifest m = suite_manifest();
  const std::vector<Job> jobs = expand_manifest(m);
  const ResultCache cache(dir);
  JobResult r;
  r.verdict = Verdict::kAccept;
  r.rounds = 5;
  ASSERT_TRUE(cache.store(jobs[0], r));
  ASSERT_EQ(count_entries(dir, ".cpr"), 1u);

  // Flip one byte inside the record: the checksum line no longer
  // validates, the entry is removed, and the caller sees kCorrupt.
  std::string name;
  if (DIR* d = opendir(dir.c_str())) {
    while (const dirent* entry = readdir(d)) {
      if (std::strstr(entry->d_name, ".cpr") != nullptr) name = entry->d_name;
    }
    closedir(d);
  }
  ASSERT_FALSE(name.empty());
  const std::string path = dir + "/" + name;
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);
    std::fputc(c ^ 0x5a, f);
    std::fclose(f);
  }
  JobResult probe;
  EXPECT_EQ(cache.load(jobs[0], &probe), ResultCache::LoadStatus::kCorrupt);
  EXPECT_EQ(count_entries(dir, ".cpr"), 0u);
  EXPECT_EQ(cache.counters().corrupt.load(), 1u);
  // Re-storing self-heals.
  ASSERT_TRUE(cache.store(jobs[0], r));
  EXPECT_EQ(cache.load(jobs[0], &probe), ResultCache::LoadStatus::kHit);
}

TEST(ResultCache, EvictionEnforcesTheEntryCap) {
  const std::string dir = temp_dir();
  const Manifest m = suite_manifest();
  const std::vector<Job> jobs = expand_manifest(m);
  ASSERT_GE(jobs.size(), 8u);
  const ResultCache cache(dir, /*max_entries=*/4);
  JobResult r;
  r.verdict = Verdict::kAccept;
  for (std::size_t j = 0; j < 8; ++j) {
    ASSERT_TRUE(cache.store(jobs[j], r));
  }
  EXPECT_LE(count_entries(dir, ".cpr"), 4u);
  EXPECT_GE(cache.counters().evictions.load(), 4u);
  // The most recent store always survives its own eviction pass.
  JobResult probe;
  EXPECT_EQ(cache.load(jobs[7], &probe), ResultCache::LoadStatus::kHit);
}

// ---- Engine integration: hits, byte-identity, skip-materialize -----------

TEST(Engine, CacheHitsReproduceAggregateBytesAtEveryThreadCount) {
  const std::string dir = temp_dir();
  const Manifest m = suite_manifest();
  const std::size_t num_jobs = expand_manifest(m).size();

  // Serverless, uncached baseline.
  BatchOptions plain;
  plain.threads = 1;
  const std::string baseline = aggregate_of(m, run_batch(m, plain));

  // Cold populate at threads 1.
  ResultCache cache(dir + "/cache");
  BatchOptions opt;
  opt.threads = 1;
  opt.result_cache = &cache;
  const BatchResult cold = run_batch(m, opt);
  EXPECT_EQ(cold.cache_hit_jobs, 0u);
  EXPECT_EQ(aggregate_of(m, cold), baseline);

  // Warm runs at threads 1 and 4: zero execution, zero materialization,
  // byte-identical aggregate.
  for (const unsigned threads : {1u, 4u}) {
    ResultCache warm_cache(dir + "/cache");
    BatchOptions warm_opt;
    warm_opt.threads = threads;
    warm_opt.result_cache = &warm_cache;
    const BatchResult warm = run_batch(m, warm_opt);
    EXPECT_EQ(warm.cache_hit_jobs, num_jobs) << threads;
    EXPECT_EQ(warm.corpus.skipped, warm.corpus.unique_instances) << threads;
    EXPECT_EQ(warm.corpus.generated, 0u) << threads;
    EXPECT_EQ(warm.corpus.disk_hits, 0u) << threads;
    EXPECT_EQ(aggregate_of(m, warm), baseline) << threads;
    EXPECT_EQ(warm_cache.counters().hits.load(), num_jobs) << threads;
  }

  // Streaming mode hits the same cache and emits the same cells.
  ResultCache stream_cache(dir + "/cache");
  BatchOptions stream_opt;
  stream_opt.threads = 4;
  stream_opt.result_cache = &stream_cache;
  StreamingAggregator agg(expand_manifest(m));
  const BatchResult streamed =
      run_batch(m, stream_opt, [&](const Job& job, const JobResult& result) {
        agg.consume(job, result);
      });
  EXPECT_EQ(streamed.cache_hit_jobs, num_jobs);
  EXPECT_EQ(render_aggregate_json(m, streamed, agg.finish()), baseline);
}

TEST(Engine, CorruptCacheEntryIsReExecutedAndHealed) {
  const std::string dir = temp_dir();
  const Manifest m = suite_manifest();
  const std::size_t num_jobs = expand_manifest(m).size();

  ResultCache cache(dir);
  BatchOptions opt;
  opt.threads = 2;
  opt.result_cache = &cache;
  const std::string baseline = aggregate_of(m, run_batch(m, opt));
  const std::size_t entries = count_entries(dir, ".cpr");
  ASSERT_GT(entries, 0u);

  // Garble one entry; the warm run re-executes exactly that job and
  // re-publishes it, bytes unchanged.
  std::string victim;
  if (DIR* d = opendir(dir.c_str())) {
    while (const dirent* entry = readdir(d)) {
      if (std::strstr(entry->d_name, ".cpr") != nullptr) {
        victim = dir + "/" + entry->d_name;
      }
    }
    closedir(d);
  }
  {
    std::FILE* f = std::fopen(victim.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 50, SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, 50, SEEK_SET), 0);
    std::fputc(c ^ 0x11, f);
    std::fclose(f);
  }
  ResultCache healed(dir);
  BatchOptions warm;
  warm.threads = 2;
  warm.result_cache = &healed;
  const BatchResult batch = run_batch(m, warm);
  EXPECT_LT(batch.cache_hit_jobs, num_jobs);
  EXPECT_GE(healed.counters().corrupt.load(), 1u);
  EXPECT_EQ(aggregate_of(m, batch), baseline);
  EXPECT_EQ(count_entries(dir, ".cpr"), entries);  // re-published
}

// ---- Concurrency: threads and processes ----------------------------------

TEST(ResultCache, ConcurrentThreadReadersAndWritersStaySafe) {
  const std::string dir = temp_dir();
  const Manifest m = suite_manifest();
  const std::vector<Job> jobs = expand_manifest(m);
  const ResultCache cache(dir);
  JobResult canonical;
  canonical.verdict = Verdict::kReject;
  canonical.rounds = 17;
  canonical.messages = 999;

  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      JobResult probe;
      for (int round = 0; round < 40; ++round) {
        const Job& job = jobs[(t + round) % jobs.size()];
        if (t % 2 == 0) {
          if (!cache.store(job, canonical)) bad.store(true);
        } else {
          const auto status = cache.load(job, &probe);
          if (status == ResultCache::LoadStatus::kCorrupt) bad.store(true);
          if (status == ResultCache::LoadStatus::kHit &&
              render_journal_record(job, probe) !=
                  render_journal_record(job, canonical)) {
            bad.store(true);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(count_entries(dir, ".cpr.tmp"), 0u);
}

TEST(ResultCache, ConcurrentProcessWritersNeverPublishTornEntries) {
  const std::string dir = temp_dir();
  const Manifest m = suite_manifest();
  const std::vector<Job> jobs = expand_manifest(m);
  JobResult canonical;
  canonical.verdict = Verdict::kAccept;
  canonical.rounds = 23;
  canonical.messages = 4242;

  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    const ResultCache mine(dir);
    for (int round = 0; round < 30; ++round) {
      for (const Job& job : jobs) {
        if (!mine.store(job, canonical)) _exit(1);
      }
    }
    _exit(0);
  }
  const ResultCache cache(dir);
  JobResult probe;
  for (int round = 0; round < 30; ++round) {
    for (const Job& job : jobs) {
      ASSERT_TRUE(cache.store(job, canonical));
      const auto status = cache.load(job, &probe);
      ASSERT_NE(status, ResultCache::LoadStatus::kCorrupt);
      if (status == ResultCache::LoadStatus::kHit) {
        ASSERT_EQ(render_journal_record(job, probe),
                  render_journal_record(job, canonical));
      }
    }
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(count_entries(dir, ".cpr.tmp"), 0u);
  // Post-quiesce, every entry is a hit with the canonical bytes.
  for (const Job& job : jobs) {
    ASSERT_EQ(cache.load(job, &probe), ResultCache::LoadStatus::kHit);
    EXPECT_EQ(render_journal_record(job, probe),
              render_journal_record(job, canonical));
  }
}

// ---- The daemon over a real socket ---------------------------------------

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool recv_line(int fd, std::string* buf, std::string* line) {
  while (true) {
    const std::size_t pos = buf->find('\n');
    if (pos != std::string::npos) {
      line->assign(*buf, 0, pos);
      buf->erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buf->append(chunk, static_cast<std::size_t>(n));
  }
}

// Runs Service::serve() on a thread and guarantees the join even when an
// ASSERT unwinds the test early (an unjoined std::thread terminates the
// whole binary). request_stop() after serve() already returned is a
// harmless no-op signal.
struct ServerThread {
  Service& service;
  std::thread thread;
  explicit ServerThread(Service& s) : service(s), thread([&s] { s.serve(); }) {}
  ~ServerThread() { stop(); }
  void stop() {
    if (thread.joinable()) {
      service.request_stop();
      thread.join();
    }
  }
  void join() { thread.join(); }
};

int connect_to(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  EXPECT_LT(path.size(), sizeof addr.sun_path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << strerror(errno);
  return fd;
}

// Reads lines until the "done" object arrives; returns it. Stream lines
// are appended to *stream_lines when non-null.
JsonValue read_until_done(int fd, std::string* buf,
                          std::vector<std::string>* stream_lines) {
  std::string line;
  while (recv_line(fd, buf, &line)) {
    JsonValue msg;
    std::string err;
    EXPECT_TRUE(JsonValue::parse(line, &msg, &err)) << line;
    if (msg.find("done") != nullptr) return msg;
    if (const JsonValue* ok = msg.find("ok")) {
      EXPECT_TRUE(ok->as_bool()) << line;
      continue;
    }
    if (stream_lines != nullptr) stream_lines->push_back(line);
  }
  ADD_FAILURE() << "connection closed before the done line";
  return JsonValue{};
}

TEST(Service, ServesRunsAndRepeatSweepsComeEntirelyFromCache) {
  const std::string dir = temp_dir();
  ServiceOptions so;
  so.socket_path = dir + "/cpt.sock";
  so.corpus_dir = dir + "/corpus";
  so.cache_dir = dir + "/cache";
  so.threads = 2;
  Service service(std::move(so));
  std::string err;
  ASSERT_TRUE(service.start(&err)) << err;
  ServerThread server(service);

  const Manifest m = suite_manifest();
  const std::size_t num_jobs = expand_manifest(m).size();
  BatchOptions plain;
  plain.threads = 1;
  const std::string baseline = aggregate_of(m, run_batch(m, plain));

  const int fd = connect_to(dir + "/cpt.sock");
  std::string buf;

  // Protocol basics: ping, unknown op, bad manifest.
  ASSERT_TRUE(send_all(fd, "{\"op\": \"ping\"}\n"));
  std::string line;
  ASSERT_TRUE(recv_line(fd, &buf, &line));
  EXPECT_NE(line.find("\"pong\": true"), std::string::npos) << line;
  ASSERT_TRUE(send_all(fd, "{\"op\": \"nonsense\"}\n"));
  ASSERT_TRUE(recv_line(fd, &buf, &line));
  EXPECT_NE(line.find("\"ok\": false"), std::string::npos) << line;
  ASSERT_TRUE(send_all(fd, "{\"op\": \"run\", \"manifest_text\": \"{\"}\n"));
  ASSERT_TRUE(recv_line(fd, &buf, &line));
  EXPECT_NE(line.find("\"ok\": false"), std::string::npos) << line;

  const auto run_request = [&](std::int64_t priority) {
    std::string req = "{\"op\": \"run\", \"manifest_text\": ";
    json_append_escaped(req, kManifest);
    req += ", \"priority\": " + json_render_int(priority) + "}\n";
    ASSERT_TRUE(send_all(fd, req));
  };

  // Cold run: executed, byte-identical to the serverless baseline.
  run_request(0);
  std::vector<std::string> stream_lines;
  JsonValue done = read_until_done(fd, &buf, &stream_lines);
  ASSERT_TRUE(done.is_object());
  EXPECT_EQ(done.find("exit_code")->as_int64(), 0);
  EXPECT_EQ(done.find("cache_hit_jobs")->as_int64(), 0);
  ASSERT_NE(done.find("aggregate"), nullptr);
  EXPECT_EQ(done.find("aggregate")->as_string(), baseline);
  // Header + one line per cell + footer.
  EXPECT_GE(stream_lines.size(), 3u);
  EXPECT_NE(stream_lines.front().find("cpt_batch_aggregate_stream_v1"),
            std::string::npos);

  // Warm run: zero jobs simulated, same bytes.
  run_request(0);
  done = read_until_done(fd, &buf, nullptr);
  ASSERT_TRUE(done.is_object());
  EXPECT_EQ(done.find("cache_hit_jobs")->as_int64(),
            static_cast<std::int64_t>(num_jobs));
  EXPECT_EQ(done.find("aggregate")->as_string(), baseline);

  // Metrics snapshot carries the serve/ counters.
  ASSERT_TRUE(send_all(fd, "{\"op\": \"metrics\"}\n"));
  ASSERT_TRUE(recv_line(fd, &buf, &line));
  JsonValue metrics_msg;
  ASSERT_TRUE(JsonValue::parse(line, &metrics_msg, &err)) << line;
  ASSERT_NE(metrics_msg.find("metrics"), nullptr);
  const std::string snapshot = metrics_msg.find("metrics")->as_string();
  EXPECT_NE(snapshot.find("serve/runs"), std::string::npos);
  EXPECT_NE(snapshot.find("serve/cache_hits"), std::string::npos);

  ASSERT_TRUE(send_all(fd, "{\"op\": \"shutdown\"}\n"));
  server.join();
  ::close(fd);
  // The socket file is gone after a clean shutdown.
  EXPECT_NE(::access((dir + "/cpt.sock").c_str(), F_OK), 0);
}

TEST(Service, HigherPriorityRequestsRunFirst) {
  const std::string dir = temp_dir();
  ServiceOptions so;
  so.socket_path = dir + "/cpt.sock";
  so.cache_dir = dir + "/cache";
  so.threads = 2;
  Service service(std::move(so));
  std::string err;
  ASSERT_TRUE(service.start(&err)) << err;
  ServerThread server(service);

  const int fd = connect_to(dir + "/cpt.sock");
  std::string buf;
  // A deliberately heavy first request pins the executor; once its stream
  // header arrives we *know* it is running, so the priority-1 and
  // priority-9 requests sent next are both queued when the executor picks
  // again -- and it must take the priority-9 one despite its later
  // arrival. request_ids are assigned in arrival order (0, 1, 2); done
  // lines surface in execution order.
  constexpr const char* kSlowManifest = R"({
    "name": "slow",
    "base_seed": 19,
    "defaults": {"trials": 8, "epsilon": 0.15, "tester": "planarity"},
    "cells": [
      {"scenario": "gnp", "params": {"n": 400, "avg_degree": 8}},
      {"scenario": "toroidal_grid", "params": {"rows": 16, "cols": 16}}
    ]
  })";
  const auto run_request = [&](const char* manifest, std::int64_t priority) {
    std::string req = "{\"op\": \"run\", \"manifest_text\": ";
    json_append_escaped(req, manifest);
    req += ", \"priority\": " + json_render_int(priority) + "}\n";
    ASSERT_TRUE(send_all(fd, req));
  };
  run_request(kSlowManifest, 0);
  std::string line;
  bool started = false;
  while (!started && recv_line(fd, &buf, &line)) {
    started = line.find("cpt_batch_aggregate_stream_v1") != std::string::npos;
  }
  ASSERT_TRUE(started);
  std::string batch2;
  for (const std::int64_t priority : {1, 9}) {
    batch2 += "{\"op\": \"run\", \"manifest_text\": ";
    json_append_escaped(batch2, kManifest);
    batch2 += ", \"priority\": " + json_render_int(priority) + "}\n";
  }
  ASSERT_TRUE(send_all(fd, batch2));
  std::vector<std::int64_t> done_order;
  while (done_order.size() < 3) {
    const JsonValue done = read_until_done(fd, &buf, nullptr);
    ASSERT_TRUE(done.is_object());
    done_order.push_back(done.find("request_id")->as_int64());
  }
  EXPECT_EQ(done_order[0], 0);  // already running when 1 and 2 arrived
  EXPECT_EQ(done_order[1], 2);  // priority 9 jumps the queue
  EXPECT_EQ(done_order[2], 1);

  server.stop();
  ::close(fd);
}

#ifdef CPT_BATCH_BIN

int run_command(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  EXPECT_TRUE(WIFEXITED(status)) << cmd;
  return WEXITSTATUS(status);
}

TEST(Service, ThinClientReproducesServerlessBytes) {
  const std::string dir = temp_dir();
  const std::string sock = dir + "/cpt.sock";
  const std::string manifest_path = dir + "/m.json";
  {
    std::FILE* f = std::fopen(manifest_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs(kManifest, f);
    std::fclose(f);
  }
  ServiceOptions so;
  so.socket_path = sock;
  so.cache_dir = dir + "/cache";
  so.threads = 2;
  Service service(std::move(so));
  std::string err;
  ASSERT_TRUE(service.start(&err)) << err;
  ServerThread server(service);

  // Serverless baseline through the real binary at two thread counts.
  const std::string base_cmd =
      std::string(CPT_BATCH_BIN) + " run " + manifest_path + " --quiet";
  ASSERT_EQ(run_command(base_cmd + " --threads=1 --out=" + dir + "/t1.json"),
            0);
  ASSERT_EQ(run_command(base_cmd + " --threads=4 --out=" + dir + "/t4.json"),
            0);
  std::string t1, t4;
  ASSERT_TRUE(read_text_file(dir + "/t1.json", &t1));
  ASSERT_TRUE(read_text_file(dir + "/t4.json", &t4));
  EXPECT_EQ(t1, t4);

  // Thin client, twice: the second run reports 100% cache hits, and both
  // produce the exact serverless bytes.
  for (int round = 0; round < 2; ++round) {
    const std::string out = dir + "/served" + std::to_string(round) + ".json";
    const std::string log = dir + "/served" + std::to_string(round) + ".log";
    ASSERT_EQ(run_command(base_cmd + " --server=" + sock + " --out=" + out +
                          " > " + log),
              0);
  }
  std::string served0, served1;
  ASSERT_TRUE(read_text_file(dir + "/served0.json", &served0));
  ASSERT_TRUE(read_text_file(dir + "/served1.json", &served1));
  EXPECT_EQ(served0, t1);
  EXPECT_EQ(served1, t1);

  // Local-execution flags contradict --server: usage error, not silence.
  EXPECT_EQ(run_command(base_cmd + " --server=" + sock +
                        " --threads=4 2>/dev/null"),
            2);
  EXPECT_EQ(run_command(base_cmd + " --server=" + sock +
                        " --journal=" + dir + "/j 2>/dev/null"),
            2);

  server.stop();

  // The client summary line CI greps for: second run 100% cached. The
  // first run ran under --quiet too, so assert on the second run's file.
  // (--quiet suppresses the line; re-check via a non-quiet run.)
  const std::string sock2 = dir + "/cpt2.sock";
  ServiceOptions so2;
  so2.socket_path = sock2;
  so2.cache_dir = dir + "/cache";
  so2.threads = 2;
  Service service2(std::move(so2));
  ASSERT_TRUE(service2.start(&err)) << err;
  ServerThread server2(service2);
  const std::string log = dir + "/loud.log";
  ASSERT_EQ(run_command(std::string(CPT_BATCH_BIN) + " run " + manifest_path +
                        " --server=" + sock2 + " > " + log),
            0);
  std::string loud;
  ASSERT_TRUE(read_text_file(log, &loud));
  const Manifest m = suite_manifest();
  const std::size_t num_jobs = expand_manifest(m).size();
  const std::string expect_prefix =
      "# serve: " + std::to_string(num_jobs) + " of " +
      std::to_string(num_jobs) + " jobs from result cache";
  EXPECT_NE(loud.find(expect_prefix), std::string::npos) << loud;
  server2.stop();
}

#endif  // CPT_BATCH_BIN

}  // namespace
}  // namespace cpt::scenario
