#include <gtest/gtest.h>

#include <map>

#include "congest/network.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "partition/forest_decomposition.h"
#include "tests/test_util.h"

namespace cpt {
namespace {

struct PeelFixture {
  Graph g;
  congest::Network net;
  congest::Simulator sim;
  congest::RoundLedger ledger;

  explicit PeelFixture(Graph graph) : g(std::move(graph)), net(g), sim(net) {}

  PeelingResult run(const PartForest& pf, std::uint32_t alpha = 3) {
    PeelingOptions opt;
    opt.alpha = alpha;
    return run_forest_decomposition(sim, g, pf, opt, ledger);
  }
};

TEST(ForestDecomposition, PlanarSingletonsNeverReject) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    PeelFixture f(gen::apollonian(100 + 30 * trial, rng));
    const PartForest pf = PartForest::singletons(f.g.num_nodes());
    const PeelingResult r = f.run(pf);
    EXPECT_TRUE(r.still_active_roots.empty());
  }
}

TEST(ForestDecomposition, OutDegreeAtMost3Alpha) {
  Rng rng(5);
  PeelFixture f(gen::triangulated_grid(10, 10));
  const PartForest pf = PartForest::singletons(f.g.num_nodes());
  const PeelingResult r = f.run(pf);
  ASSERT_TRUE(r.still_active_roots.empty());
  for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
    EXPECT_LE(r.out_records[v].size(), 9u);
  }
}

TEST(ForestDecomposition, OrientationCoversEachAdjacentPairOnce) {
  // With singleton parts, each edge {u, v} must appear as an out-record of
  // exactly one endpoint, with weight 1.
  Rng rng(7);
  PeelFixture f(gen::random_planar(120, 260, rng));
  const PartForest pf = PartForest::singletons(f.g.num_nodes());
  const PeelingResult r = f.run(pf);
  ASSERT_TRUE(r.still_active_roots.empty());
  std::map<std::pair<NodeId, NodeId>, int> covered;
  for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
    for (const congest::Record& rec : r.out_records[v]) {
      EXPECT_EQ(rec.value, 1);
      NodeId a = v;
      NodeId b = static_cast<NodeId>(rec.key);
      EXPECT_TRUE(f.g.has_edge(a, b));
      if (a > b) std::swap(a, b);
      ++covered[{a, b}];
    }
  }
  EXPECT_EQ(covered.size(), f.g.num_edges());
  for (const auto& [edge, count] : covered) EXPECT_EQ(count, 1);
}

TEST(ForestDecomposition, WeightsMatchContractedMultiplicities) {
  // Two parts, three parallel edges between them.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);  // part A path
  b.add_edge(3, 4);
  b.add_edge(4, 5);  // part B path
  b.add_edge(0, 3);
  b.add_edge(1, 4);
  b.add_edge(2, 5);  // cut edges
  PeelFixture f(std::move(b).build());
  PartForest pf;
  pf.root = {0, 0, 0, 3, 3, 3};
  pf.parent_edge.assign(6, kNoEdge);
  pf.children.assign(6, {});
  pf.members.assign(6, {});
  pf.members[0] = {0, 1, 2};
  pf.members[3] = {3, 4, 5};
  pf.parent_edge[1] = f.g.find_edge(0, 1);
  pf.parent_edge[2] = f.g.find_edge(1, 2);
  pf.children[0] = {f.g.find_edge(0, 1)};
  pf.children[1] = {f.g.find_edge(1, 2)};
  pf.parent_edge[4] = f.g.find_edge(3, 4);
  pf.parent_edge[5] = f.g.find_edge(4, 5);
  pf.children[3] = {f.g.find_edge(3, 4)};
  pf.children[4] = {f.g.find_edge(4, 5)};
  pf.depth = {0, 1, 2, 0, 1, 2};
  ASSERT_TRUE(validate_part_forest(f.g, pf));

  const PeelingResult r = f.run(pf);
  ASSERT_TRUE(r.still_active_roots.empty());
  // One of the two roots holds the out-record with weight 3.
  const auto& rec0 = r.out_records[0];
  const auto& rec3 = r.out_records[3];
  ASSERT_EQ(rec0.size() + rec3.size(), 1u);
  const congest::Record& rec = rec0.empty() ? rec3[0] : rec0[0];
  EXPECT_EQ(rec.value, 3);
}

TEST(ForestDecomposition, DenseGraphRejects) {
  // K20 with threshold 3*alpha = 9: every node has 19 active neighbors
  // forever, so the peeling must leave active nodes (arboricity evidence).
  PeelFixture f(gen::complete(20));
  const PartForest pf = PartForest::singletons(f.g.num_nodes());
  const PeelingResult r = f.run(pf);
  EXPECT_EQ(r.still_active_roots.size(), 20u);
}

TEST(ForestDecomposition, HigherAlphaAcceptsDenserGraphs) {
  // K20 peels fine with alpha = 7 (threshold 21 > 19).
  PeelFixture f(gen::complete(20));
  const PartForest pf = PartForest::singletons(f.g.num_nodes());
  const PeelingResult r = f.run(pf, /*alpha=*/7);
  EXPECT_TRUE(r.still_active_roots.empty());
}

TEST(ForestDecomposition, NeighborRootsLearned) {
  Rng rng(9);
  PeelFixture f(gen::grid(5, 5));
  const PartForest pf = PartForest::singletons(f.g.num_nodes());
  const PeelingResult r = f.run(pf);
  for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
    const auto nbrs = f.g.neighbors(v);
    for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
      EXPECT_EQ(r.neighbor_root[v][p], nbrs[p].to);
    }
  }
}

TEST(ForestDecomposition, QuietSuperRoundsStillChargeRounds) {
  // An edgeless graph inactivates instantly, but the schedule still ticks
  // one round per remaining super-round: total >= super-round count.
  PeelFixture f(gen::path(1));
  GraphBuilder b(64);
  PeelFixture f2(std::move(b).build());
  const PartForest pf = PartForest::singletons(f2.g.num_nodes());
  const PeelingResult r = f2.run(pf);
  EXPECT_TRUE(r.still_active_roots.empty());
  // ceil(log_{1.5} 64) + 1 = 12 super-rounds, plus the learning round.
  EXPECT_GE(f2.ledger.total_rounds(), 12u);
}

}  // namespace
}  // namespace cpt
