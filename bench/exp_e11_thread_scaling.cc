// E11 -- multicore scaling of the CONGEST simulator and the batch engine.
// Two axes, both swept over a thread list (default 1,2,4,8):
//   * intra-sim -- one simulation, N workers inside Simulator::run, for the
//     E0 stage1 and saturate workloads under both delivery strategies
//     (word-level flight union vs the K-way cursor merge). Message/round
//     counts are verified bit-identical across every (threads, mode) cell
//     before any metric is written.
//   * cross-sim -- the scenario engine running bench/manifests/e11.json with
//     N concurrent single-threaded simulations, plus one run per
//     --sim-threads-policy at the widest thread count. Aggregate JSON is
//     verified byte-identical across every cell.
// Results go to BENCH_thread_scaling.json (bench_json schema; metric names
// are intra/<workload>/t<N>/<mode>/... and cross/t<N>/... --
// see bench/README.md).
//
// Usage: exp_e11_thread_scaling [--grid=96] [--reps=3] [--threads=1,2,4,8]
//                               [--manifest=PATH]
//                               [--out=BENCH_thread_scaling.json]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "congest/metrics.h"
#include "congest/network.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "partition/partition.h"
#include "scenario/aggregate.h"
#include "scenario/engine.h"
#include "scenario/manifest.h"

namespace cpt {
namespace {

// Every node sends on every port each round (the E0 saturate workload).
class Saturate : public congest::Program {
 public:
  explicit Saturate(std::uint64_t rounds) : rounds_(rounds) {}

  void begin(congest::Exec& ex) override {
    const NodeId n = ex.network().num_nodes();
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint32_t p = 0; p < ex.network().port_count(v); ++p) {
        ex.send(v, p, congest::Msg::make(p));
      }
    }
  }

  void on_wake(congest::Exec& ex, NodeId v,
               std::span<const congest::Inbound> inbox) override {
    if (ex.current_round() >= rounds_) return;
    for (const congest::Inbound& in : inbox) {
      ex.send(v, in.port, in.msg);
    }
  }

 private:
  std::uint64_t rounds_;
};

struct Throughput {
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
  double seconds = 0;

  double messages_per_sec() const {
    return seconds > 0 ? static_cast<double>(messages) / seconds : 0;
  }
};

Throughput best_of(int reps, const std::function<Throughput()>& run) {
  Throughput best;
  for (int i = 0; i < reps; ++i) {
    const Throughput t = run();
    if (best.seconds == 0 || t.seconds < best.seconds) best = t;
  }
  return best;
}

void report(bench::BenchJson& out, const std::string& prefix,
            const Throughput& t) {
  std::printf("  %-28s : %12llu msgs  %8llu rounds  %8.3fs  %12.0f msg/s\n",
              prefix.c_str(), static_cast<unsigned long long>(t.messages),
              static_cast<unsigned long long>(t.rounds), t.seconds,
              t.messages_per_sec());
  out.metric(prefix + "/messages", static_cast<double>(t.messages), "1");
  out.metric(prefix + "/rounds", static_cast<double>(t.rounds), "1");
  out.metric(prefix + "/wall", t.seconds, "s");
  out.metric(prefix + "/messages_per_sec", t.messages_per_sec(), "1/s");
}

bool parse_thread_list(const char* text, std::vector<unsigned>* out) {
  out->clear();
  while (*text != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || v == 0 || v > 64) return false;
    out->push_back(static_cast<unsigned>(v));
    text = end;
    if (*text == ',') ++text;
    else if (*text != '\0') return false;
  }
  return !out->empty();
}

}  // namespace
}  // namespace cpt

int main(int argc, char** argv) {
  using namespace cpt;
  using namespace cpt::scenario;
  NodeId side = 96;
  int reps = 3;
  std::vector<unsigned> thread_list{1, 2, 4, 8};
  std::string manifest_path = CPT_MANIFEST_DIR "/e11.json";
  std::string out_path = "BENCH_thread_scaling.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--grid=", 7) == 0) {
      side = static_cast<NodeId>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      if (!parse_thread_list(argv[i] + 10, &thread_list)) {
        std::fprintf(stderr, "bad --threads list: %s\n", argv[i] + 10);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--manifest=", 11) == 0) {
      manifest_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", argv[i]);
      return 2;
    }
  }

  bench::header("E11: thread scaling (intra-sim and cross-sim)",
                "deterministic parallel rounds: identical results at every "
                "thread count; only wall clock moves");
  const Graph g = gen::triangulated_grid(side, side);
  std::printf("triangulated_grid(%u,%u): n=%u m=%u, best of %d reps\n", side,
              side, g.num_nodes(), g.num_edges(), reps);
  congest::Network net(g);

  bench::BenchJson out("thread_scaling");
  bench::add_provenance(out);
  out.meta("graph", "triangulated_grid");
  out.meta("side", static_cast<std::int64_t>(side));
  out.meta("nodes", static_cast<std::int64_t>(g.num_nodes()));
  out.meta("edges", static_cast<std::int64_t>(g.num_edges()));
  {
    std::string list;
    for (const unsigned t : thread_list) {
      if (!list.empty()) list += ',';
      list += std::to_string(t);
    }
    out.meta("threads_list", list);
  }

  // ---- Intra-sim axis: one simulation, t workers, both delivery modes.
  // The t=1 serial single-bitset path is the result baseline; every other
  // cell must reproduce its ledgers exactly.
  std::printf("\nintra-sim (one simulation, N workers):\n");
  Throughput base_stage1, base_saturate;
  bool have_base = false;
  for (const unsigned t : thread_list) {
    // Both modes collapse to the same serial path at t == 1; measure once.
    const int num_modes = t == 1 ? 1 : 2;
    for (int mode = 0; mode < num_modes; ++mode) {
      const bool union_delivery = mode == 0;
      congest::SimOptions sopt;
      sopt.num_threads = t;
      sopt.union_delivery = union_delivery;
      congest::Simulator sim(net, sopt);
      const std::string cell = "intra/stage1/t" + std::to_string(t) +
                               (t == 1 ? "" : union_delivery ? "/union"
                                                             : "/merge");
      const Throughput stage1 = best_of(reps, [&] {
        congest::RoundLedger ledger;
        Stage1Options opt;
        bench::Timer timer;
        const Stage1Result r = run_stage1(sim, g, opt, ledger);
        if (r.rejected) std::fprintf(stderr, "unexpected stage1 reject\n");
        return Throughput{ledger.total_messages(), ledger.total_rounds(),
                          timer.seconds()};
      });
      report(out, cell, stage1);
      const Throughput saturate = best_of(reps, [&] {
        Saturate sat(64);
        bench::Timer timer;
        const congest::PassResult r = sim.run(sat);
        return Throughput{r.messages, r.rounds, timer.seconds()};
      });
      report(out,
             "intra/saturate/t" + std::to_string(t) +
                 (t == 1 ? "" : union_delivery ? "/union" : "/merge"),
             saturate);
      if (!have_base) {
        base_stage1 = stage1;
        base_saturate = saturate;
        have_base = true;
      } else if (stage1.messages != base_stage1.messages ||
                 stage1.rounds != base_stage1.rounds ||
                 saturate.messages != base_saturate.messages ||
                 saturate.rounds != base_saturate.rounds) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION at t=%u %s: counts differ from "
                     "the serial baseline\n",
                     t, union_delivery ? "union" : "merge");
        return 1;
      }
    }
  }

  // ---- Cross-sim axis: the batch engine, t concurrent simulations.
  Manifest manifest;
  std::string error;
  if (!load_manifest_file(manifest_path, &manifest, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("\ncross-sim (batch engine, %s):\n", manifest.name.c_str());
  std::string base_aggregate;
  const auto run_cross = [&](const BatchOptions& options,
                             const std::string& cell) -> bool {
    const double wall = [&] {
      double best = 0;
      for (int i = 0; i < reps; ++i) {
        const BatchResult batch = run_batch(manifest, options);
        if (batch.failed_jobs > 0 || batch.timed_out_jobs > 0) {
          std::fprintf(stderr, "error: %u failed / %u timed-out jobs\n",
                       batch.failed_jobs, batch.timed_out_jobs);
          return -1.0;
        }
        const std::string agg = render_aggregate_json(
            manifest, batch, aggregate_cells(batch));
        if (base_aggregate.empty()) {
          base_aggregate = agg;
        } else if (agg != base_aggregate) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION at %s: aggregate JSON differs\n",
                       cell.c_str());
          return -1.0;
        }
        if (best == 0 || batch.wall_seconds < best) best = batch.wall_seconds;
      }
      return best;
    }();
    if (wall < 0) return false;
    const double jobs = static_cast<double>(expand_manifest(manifest).size());
    std::printf("  %-28s : %8.3fs  %8.1f jobs/s\n", cell.c_str(), wall,
                jobs / wall);
    out.metric(cell + "/wall", wall, "s");
    out.metric(cell + "/jobs_per_sec", jobs / wall, "1/s");
    return true;
  };
  for (const unsigned t : thread_list) {
    BatchOptions options;
    options.threads = t;
    if (!run_cross(options, "cross/t" + std::to_string(t))) return 1;
  }
  // Policy sweep at the widest thread count: same aggregate bytes under
  // every core split.
  const unsigned widest = thread_list.back();
  for (const SimThreadsPolicy policy :
       {SimThreadsPolicy::kManifest, SimThreadsPolicy::kSerialJobsWide,
        SimThreadsPolicy::kThreadedJobsNarrow, SimThreadsPolicy::kAuto}) {
    BatchOptions options;
    options.threads = widest;
    options.sim_threads_policy = policy;
    if (!run_cross(options, std::string("cross/policy/") +
                                sim_threads_policy_name(policy))) {
      return 1;
    }
  }

  out.meta("peak_rss_bytes",
           static_cast<std::int64_t>(bench::peak_rss_bytes()));
  if (!out.write(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (peak rss %.1f MiB)\n", out_path.c_str(),
              static_cast<double>(bench::peak_rss_bytes()) / (1024 * 1024));
  return 0;
}
