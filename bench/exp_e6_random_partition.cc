// E6 -- Theorem 4 / Claim 14 / Lemma 13: the randomized partition.
// (a) delta sweep: trials per phase = Theta(log 1/delta), success rate
//     >= 1 - delta; (b) n sweep: rounds essentially independent of n
//     (vs. the deterministic partition's log n super-round factor).
#include "bench/bench_common.h"
#include "congest/network.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "partition/partition.h"
#include "partition/random_partition.h"

using namespace cpt;

namespace {

std::uint64_t run_det(const Graph& g, double eps) {
  congest::Network net(g);
  congest::Simulator sim(net);
  congest::RoundLedger ledger;
  Stage1Options opt;
  opt.epsilon = eps;
  run_stage1(sim, g, opt, ledger);
  return ledger.total_rounds();
}

}  // namespace

int main() {
  bench::header("E6: randomized partition (Theorem 4)",
                "O(poly(1/eps)(log(1/delta) + log* n)) rounds, success 1-delta");
  const double eps = 0.3;

  std::printf("-- (a) delta sweep, trigrid 32x32, %d seeds each\n", 8);
  std::printf("%-8s %-8s %-12s %-12s %-14s\n", "delta", "trials",
              "success", "avg-cut", "avg-rounds");
  for (const double delta : {0.5, 0.25, 0.1, 0.01}) {
    const Graph g = gen::triangulated_grid(32, 32);
    int success = 0;
    double cut_sum = 0;
    double round_sum = 0;
    std::uint32_t trials = 0;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      congest::Network net(g);
      congest::Simulator sim(net);
      congest::RoundLedger ledger;
      RandomPartitionOptions opt;
      opt.epsilon = eps;
      opt.delta = delta;
      opt.seed = seed;
      const RandomPartitionResult r = run_random_partition(sim, g, opt, ledger);
      trials = r.trials_per_phase;
      const PartitionStats stats = measure_partition(g, r.forest);
      cut_sum += static_cast<double>(stats.cut_edges);
      round_sum += static_cast<double>(ledger.total_rounds());
      if (stats.cut_edges <= eps * g.num_edges() / 2.0) ++success;
    }
    std::printf("%-8.2f %-8u %-12s %-12.0f %-14.0f\n", delta, trials,
                (std::to_string(success) + "/8").c_str(), cut_sum / 8,
                round_sum / 8);
  }

  std::printf("\n-- (b) n sweep at delta = 0.1: randomized vs deterministic rounds\n");
  std::printf("%-8s %-14s %-14s %-10s\n", "n", "rand-rounds", "det-rounds",
              "ratio");
  for (std::uint32_t side = 16; side <= 96; side *= 2) {
    const Graph g = gen::triangulated_grid(side, side);
    congest::Network net(g);
    congest::Simulator sim(net);
    congest::RoundLedger ledger;
    RandomPartitionOptions opt;
    opt.epsilon = eps;
    opt.delta = 0.1;
    opt.seed = 5;
    run_random_partition(sim, g, opt, ledger);
    const std::uint64_t rand_rounds = ledger.total_rounds();
    const std::uint64_t det_rounds = run_det(g, eps);
    std::printf("%-8u %-14llu %-14llu %-10.2f\n", g.num_nodes(),
                static_cast<unsigned long long>(rand_rounds),
                static_cast<unsigned long long>(det_rounds),
                static_cast<double>(det_rounds) /
                    static_cast<double>(rand_rounds));
  }
  std::printf(
      "\nHonest reading: at these sizes the randomized variant costs MORE\n"
      "rounds overall -- Claim 14's weaker per-phase contraction (1 - 1/192\n"
      "vs Claim 1's 1 - 1/36) means ~5x more phases, which dwarfs the\n"
      "Theta(log n) peeling rounds it saves per phase. The log* n vs log n\n"
      "asymptotic advantage only bites when log n exceeds the phase-count\n"
      "gap, far beyond laptop sizes. The delta dependence (trials per\n"
      "phase) matches Lemma 13 exactly.\n");
  return 0;
}
