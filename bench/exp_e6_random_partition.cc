// E6 -- Theorem 4 / Claim 14 / Lemma 13: the randomized partition.
// (a) delta sweep: trials per phase = Theta(log 1/delta), success rate
//     >= 1 - delta; (b) n sweep: rounds essentially independent of n
//     (vs. the deterministic partition's log n super-round factor).
//
// Driven by the scenario engine: the delta sweep and the rand-vs-det size
// sweep live in bench/manifests/e6.json (override with --manifest=PATH;
// --threads=N runs the independent partitions concurrently). Manifest
// cells with several random_partition trials become the delta table; cells
// pairing the "random_partition" and "stage1_partition" testers become
// the size-sweep comparison. Per-job results are identical to direct
// run_random_partition / run_stage1 calls (pinned by scenario_test.cc).
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/manifest_args.h"
#include "scenario/engine.h"
#include "scenario/manifest.h"

using namespace cpt;
using namespace cpt::scenario;

int main(int argc, char** argv) {
  Manifest manifest;
  BatchOptions options;
  std::string manifest_path;
  if (const int rc = bench::parse_manifest_args(
          argc, argv, CPT_MANIFEST_DIR "/e6.json", &manifest, &options,
          &manifest_path)) {
    return rc;
  }
  bench::header("E6: randomized partition (Theorem 4)",
                "O(poly(1/eps)(log(1/delta) + log* n)) rounds, success 1-delta");
  const BatchResult batch = run_batch(manifest, options);

  // Bucket jobs by originating manifest cell.
  std::vector<std::vector<std::size_t>> by_cell(manifest.cells.size());
  for (std::size_t j = 0; j < batch.jobs.size(); ++j) {
    by_cell[batch.jobs[j].cell_index].push_back(j);
  }

  std::printf("-- (a) delta sweep: per-phase trials and success rate\n");
  std::printf("%-30s %-8s %-8s %-12s %-12s %-14s\n", "input", "delta",
              "trials", "success", "avg-cut", "avg-rounds");
  for (const std::vector<std::size_t>& cell : by_cell) {
    bool all_random = cell.size() >= 2;
    for (const std::size_t j : cell) {
      all_random &= batch.jobs[j].tester == TesterKind::kRandomPartition;
    }
    if (!all_random) continue;
    int success = 0;
    double cut_sum = 0;
    double round_sum = 0;
    std::uint32_t trials = 0;
    for (const std::size_t j : cell) {
      const Job& job = batch.jobs[j];
      const JobResult& r = batch.results[j];
      trials = r.trials_per_phase;
      cut_sum += static_cast<double>(r.cut_edges);
      round_sum += static_cast<double>(r.rounds);
      if (r.cut_edges <= job.epsilon * r.m / 2.0) ++success;
    }
    const Job& first = batch.jobs[cell[0]];
    const double denom = static_cast<double>(cell.size());
    std::printf("%-30s %-8.2f %-8u %-12s %-12.0f %-14.0f\n",
                first.instance.label().c_str(), first.delta, trials,
                (std::to_string(success) + "/" + std::to_string(cell.size()))
                    .c_str(),
                cut_sum / denom, round_sum / denom);
  }

  std::printf("\n-- (b) n sweep: randomized vs deterministic rounds\n");
  std::printf("%-8s %-14s %-14s %-10s\n", "n", "rand-rounds", "det-rounds",
              "ratio");
  for (const std::vector<std::size_t>& cell : by_cell) {
    std::uint64_t rand_rounds = 0;
    std::uint64_t det_rounds = 0;
    NodeId n = 0;
    for (const std::size_t j : cell) {
      const Job& job = batch.jobs[j];
      const JobResult& r = batch.results[j];
      n = r.n;
      if (job.tester == TesterKind::kRandomPartition) rand_rounds = r.rounds;
      if (job.tester == TesterKind::kStage1Partition) det_rounds = r.rounds;
    }
    if (rand_rounds == 0 || det_rounds == 0) continue;  // not a pair cell
    std::printf("%-8u %-14llu %-14llu %-10.2f\n", n,
                static_cast<unsigned long long>(rand_rounds),
                static_cast<unsigned long long>(det_rounds),
                static_cast<double>(det_rounds) /
                    static_cast<double>(rand_rounds));
  }
  std::printf(
      "\nHonest reading: at these sizes the randomized variant costs MORE\n"
      "rounds overall -- Claim 14's weaker per-phase contraction (1 - 1/192\n"
      "vs Claim 1's 1 - 1/36) means ~5x more phases, which dwarfs the\n"
      "Theta(log n) peeling rounds it saves per phase. The log* n vs log n\n"
      "asymptotic advantage only bites when log n exceeds the phase-count\n"
      "gap, far beyond laptop sizes. The delta dependence (trials per\n"
      "phase) matches Lemma 13 exactly.\n");
  std::printf("(sweep definition: %s)\n", manifest_path.c_str());
  return 0;
}
