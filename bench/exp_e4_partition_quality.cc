// E4 -- Claims 1, 3, 4 / Corollary 5: Stage I partition quality.
// Reports, per phase: cut weight before/after (the Claim-1 contraction
// factor must be <= 1 - 1/36), and at completion: cut <= eps*m/2 (Claim 3)
// and the part diameters (Claim 4 / Corollary 5).
#include "bench/bench_common.h"
#include "congest/network.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "partition/partition.h"

using namespace cpt;

int main() {
  bench::header("E4: Stage I partition quality",
                "Claim 1: w(G_{i+1}) <= (1-1/36) w(G_i); Claim 3: final cut "
                "<= eps*m/2; Claim 4: diameter <= 4^i");
  Rng rng(9);
  struct Input {
    const char* name;
    Graph g;
  };
  std::vector<Input> inputs;
  inputs.push_back({"trigrid 48x48", gen::triangulated_grid(48, 48)});
  inputs.push_back({"apollonian 2k", gen::apollonian(2000, rng)});
  inputs.push_back({"rnd-planar 2k", gen::random_planar(2000, 4800, rng)});

  const double eps = 0.25;
  for (const Input& input : inputs) {
    congest::Network net(input.g);
    congest::Simulator sim(net);
    congest::RoundLedger ledger;
    Stage1Options opt;
    opt.epsilon = eps;
    const Stage1Result r = run_stage1(sim, input.g, opt, ledger);
    std::printf("\n-- %s: n=%u m=%u, phases emulated %u/%u, rejected=%d\n",
                input.name, input.g.num_nodes(), input.g.num_edges(),
                r.phases_emulated, r.phases_total, r.rejected ? 1 : 0);
    std::printf("%-7s %-10s %-10s %-9s %-8s %-8s %-8s %-7s\n", "phase",
                "cut-before", "cut-after", "factor", "parts", "cv-it",
                "T-height", "rounds");
    for (std::size_t i = 0; i < r.phase_stats.size(); ++i) {
      const PhaseStats& p = r.phase_stats[i];
      const double factor =
          p.cut_before == 0
              ? 0.0
              : static_cast<double>(p.cut_after) / p.cut_before;
      std::printf("%-7zu %-10llu %-10llu %-9.3f %-8u %-8u %-8u %-7llu\n",
                  i + 1, static_cast<unsigned long long>(p.cut_before),
                  static_cast<unsigned long long>(p.cut_after), factor,
                  p.parts_after, p.cv_iterations, p.marked_tree_height,
                  static_cast<unsigned long long>(p.rounds));
      if (p.cut_before > 0 && factor > 1.0 - 1.0 / 36.0 + 1e-9 &&
          p.cut_after > 1) {
        std::printf("  !! Claim 1 factor exceeded\n");
      }
    }
    const PartitionStats stats = measure_partition(input.g, r.forest);
    const double target = eps * input.g.num_edges() / 2.0;
    std::printf("final: cut=%llu (target <= %.0f: %s)  parts=%u  "
                "max-ecc=%u  max-tree-depth=%u\n",
                static_cast<unsigned long long>(stats.cut_edges), target,
                stats.cut_edges <= target ? "OK" : "VIOLATED",
                stats.num_parts, stats.max_part_ecc, stats.max_tree_depth);
  }
  return 0;
}
