// E4 -- Claims 1, 3, 4 / Corollary 5: Stage I partition quality.
// Reports, per phase: cut weight before/after (the Claim-1 contraction
// factor must be <= 1 - 1/36), and at completion: cut <= eps*m/2 (Claim 3)
// and the part diameters (Claim 4 / Corollary 5).
//
// Driven by the scenario engine: inputs live in bench/manifests/e4.json
// (tester "stage1_partition" runs the bare Theorem 3 driver; override with
// --manifest=PATH, --threads=N for concurrent inputs). Per-phase stats and
// the final partition are identical to direct run_stage1 calls (pinned by
// scenario_test.cc).
#include "bench/bench_common.h"
#include "bench/manifest_args.h"
#include "scenario/engine.h"
#include "scenario/manifest.h"

using namespace cpt;
using namespace cpt::scenario;

int main(int argc, char** argv) {
  Manifest manifest;
  BatchOptions options;
  std::string manifest_path;
  if (const int rc = bench::parse_manifest_args(
          argc, argv, CPT_MANIFEST_DIR "/e4.json", &manifest, &options,
          &manifest_path)) {
    return rc;
  }
  bench::header("E4: Stage I partition quality",
                "Claim 1: w(G_{i+1}) <= (1-1/36) w(G_i); Claim 3: final cut "
                "<= eps*m/2; Claim 4: diameter <= 4^i");
  const BatchResult batch = run_batch(manifest, options);
  for (std::size_t j = 0; j < batch.jobs.size(); ++j) {
    const Job& job = batch.jobs[j];
    const JobResult& r = batch.results[j];
    std::printf("\n-- %s: n=%u m=%u, phases emulated %u/%u, rejected=%d\n",
                job.instance.label().c_str(), r.n, r.m, r.stage1_phases,
                r.stage1_phases_total, r.verdict == Verdict::kReject ? 1 : 0);
    std::printf("%-7s %-10s %-10s %-9s %-8s %-8s %-8s %-7s\n", "phase",
                "cut-before", "cut-after", "factor", "parts", "cv-it",
                "T-height", "rounds");
    for (std::size_t i = 0; i < r.phase_stats.size(); ++i) {
      const PhaseStats& p = r.phase_stats[i];
      const double factor =
          p.cut_before == 0
              ? 0.0
              : static_cast<double>(p.cut_after) / p.cut_before;
      std::printf("%-7zu %-10llu %-10llu %-9.3f %-8u %-8u %-8u %-7llu\n",
                  i + 1, static_cast<unsigned long long>(p.cut_before),
                  static_cast<unsigned long long>(p.cut_after), factor,
                  p.parts_after, p.cv_iterations, p.marked_tree_height,
                  static_cast<unsigned long long>(p.rounds));
      if (p.cut_before > 0 && factor > 1.0 - 1.0 / 36.0 + 1e-9 &&
          p.cut_after > 1) {
        std::printf("  !! Claim 1 factor exceeded\n");
      }
    }
    const double target = job.epsilon * r.m / 2.0;
    std::printf("final: cut=%llu (target <= %.0f: %s)  parts=%u  "
                "max-ecc=%u  max-tree-depth=%u\n",
                static_cast<unsigned long long>(r.cut_edges), target,
                r.cut_edges <= target ? "OK" : "VIOLATED", r.num_parts,
                r.max_part_ecc, r.max_tree_depth);
  }
  std::printf("(sweep definition: %s)\n", manifest_path.c_str());
  return 0;
}
