// Shared argv handling for the manifest-driven experiment binaries
// (E1/E3/E7): the --manifest=PATH / --threads=N flags plus manifest
// loading, identical across the three harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/engine.h"
#include "scenario/manifest.h"

namespace cpt::bench {

// Returns 0 on success; otherwise the exit code the caller should return
// (2 = bad usage, 1 = manifest load failure), with the message printed.
inline int parse_manifest_args(int argc, char** argv,
                               const char* default_manifest,
                               scenario::Manifest* manifest,
                               scenario::BatchOptions* options,
                               std::string* manifest_path) {
  *manifest_path = default_manifest;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--manifest=", 11) == 0) {
      *manifest_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      options->threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    } else {
      std::fprintf(stderr, "usage: %s [--manifest=PATH] [--threads=N]\n",
                   argv[0]);
      return 2;
    }
  }
  std::string error;
  if (!scenario::load_manifest_file(*manifest_path, manifest, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

}  // namespace cpt::bench
