// Shared helpers for the experiment harnesses (E1..E10). Each binary prints
// a self-contained table; see DESIGN.md section 4 for the experiment index
// and EXPERIMENTS.md for recorded results.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace cpt::bench {

inline void header(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cpt::bench
