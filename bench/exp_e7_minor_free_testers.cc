// E7 -- Corollary 16: cycle-freeness and bipartiteness testers on
// (promised) minor-free graphs, deterministic (Theorem 3 partition) and
// randomized (Theorem 4 partition) variants.
//
// Driven by the scenario engine: inputs and modes live in
// bench/manifests/e7.json (override with --manifest=PATH); --threads=N runs
// the independent simulations concurrently. Measured rounds are identical
// to direct test_cycle_freeness / test_bipartiteness calls on the same
// instance (pinned by scenario_test.cc).
#include "bench/bench_common.h"
#include "bench/manifest_args.h"
#include "scenario/aggregate.h"
#include "scenario/engine.h"
#include "scenario/manifest.h"

using namespace cpt;
using namespace cpt::scenario;

namespace {

const char* verdict_str(const CellAggregate& cell) {
  return cell.rejects > 0 ? "reject" : "accept";
}

}  // namespace

int main(int argc, char** argv) {
  Manifest manifest;
  BatchOptions options;
  std::string manifest_path;
  if (const int rc = bench::parse_manifest_args(
          argc, argv, CPT_MANIFEST_DIR "/e7.json", &manifest, &options,
          &manifest_path)) {
    return rc;
  }
  bench::header("E7: minor-free property testers",
                "Corollary 16: cycle-freeness & bipartiteness in "
                "O(poly(1/eps) log n) det / O(poly(1/eps)(log 1/delta + "
                "log* n)) rand rounds");
  const BatchResult batch = run_batch(manifest, options);
  const std::vector<CellAggregate> cells = aggregate_cells(batch);

  std::printf("%-34s %-8s %-9s %-12s %-12s %-12s\n", "input", "n", "mode",
              "tester", "verdict", "rounds");
  for (const CellAggregate& cell : cells) {
    std::printf("%-34s %-8u %-9s %-12s %-12s %-12llu\n", cell.scenario.c_str(),
                cell.n_max, cell.randomized ? "rand" : "det",
                cell.tester.c_str(), verdict_str(cell),
                static_cast<unsigned long long>(cell.rounds.p50));
  }
  std::printf(
      "\nOne-sided semantics: 'accept' rows for properties the input HAS\n"
      "are guaranteed; single odd cycles (cycle 4097) may legitimately be\n"
      "missed when the cut hides them -- only eps-FAR inputs must reject.\n");
  std::printf("(sweep definition: %s)\n", manifest_path.c_str());
  return 0;
}
