// E7 -- Corollary 16: cycle-freeness and bipartiteness testers on
// (promised) minor-free graphs, deterministic (Theorem 3 partition) and
// randomized (Theorem 4 partition) variants.
#include "bench/bench_common.h"
#include "apps/bipartite.h"
#include "apps/cycle_free.h"
#include "graph/generators.h"
#include "graph/ops.h"

using namespace cpt;

namespace {

const char* verdict_str(Verdict v) {
  return v == Verdict::kAccept ? "accept" : "reject";
}

}  // namespace

int main() {
  bench::header("E7: minor-free property testers",
                "Corollary 16: cycle-freeness & bipartiteness in "
                "O(poly(1/eps) log n) det / O(poly(1/eps)(log 1/delta + "
                "log* n)) rand rounds");
  Rng rng(13);
  struct Input {
    const char* name;
    Graph g;
    bool cycle_free;
    bool bipartite;
  };
  std::vector<Input> inputs;
  inputs.push_back({"tree 4k", gen::random_tree(4096, rng), true, true});
  inputs.push_back({"grid 48x48", gen::grid(48, 48), false, true});
  inputs.push_back({"trigrid 40x40", gen::triangulated_grid(40, 40), false, false});
  inputs.push_back({"cycle 4097 (odd)", gen::cycle(4097), false, false});
  inputs.push_back({"C3 x 300", gen::disjoint_copies(gen::cycle(3), 300), false, false});

  std::printf("%-18s %-9s %-12s %-10s %-12s %-10s %-12s\n", "input", "mode",
              "cycle-free", "rounds", "bipartite", "rounds", "expected");
  for (const Input& input : inputs) {
    for (const bool randomized : {false, true}) {
      MinorFreeOptions opt;
      opt.epsilon = 0.25;
      opt.randomized = randomized;
      opt.delta = 0.1;
      opt.seed = 3;
      const AppResult cf = test_cycle_freeness(input.g, opt);
      const AppResult bp = test_bipartiteness(input.g, opt);
      std::printf("%-18s %-9s %-12s %-10llu %-12s %-10llu cf=%d bip=%d\n",
                  input.name, randomized ? "rand" : "det",
                  verdict_str(cf.verdict),
                  static_cast<unsigned long long>(cf.rounds()),
                  verdict_str(bp.verdict),
                  static_cast<unsigned long long>(bp.rounds()),
                  input.cycle_free ? 1 : 0, input.bipartite ? 1 : 0);
    }
  }
  std::printf(
      "\nOne-sided semantics: 'accept' rows for properties the input HAS\n"
      "are guaranteed; single odd cycles (cycle 4097) may legitimately be\n"
      "missed when the cut hides them -- only eps-FAR inputs must reject.\n");
  return 0;
}
