// E10 -- Section 1.1 remark + ablations: our Stage I partition
// (O(log n poly(1/eps)) rounds, deterministic guarantee) vs. the
// Elkin-Neiman-style random-shift partition (O(log^2 n poly(1/eps)) total
// when used for testing, whp guarantee only). Also ablates the
// forest-decomposition verification step: with the Theorem-4 selection (no
// peeling) the per-phase contraction guarantee weakens from 1 - 1/(12a) to
// 1 - 1/(64a) (Claim 1 vs Claim 14), visible in the phases needed.
#include <cstring>

#include "bench/bench_common.h"
#include "baseline/en_partition.h"
#include "baseline/en_tester.h"
#include "congest/network.h"
#include "congest/simulator.h"
#include "core/tester.h"
#include "graph/generators.h"
#include "partition/partition.h"
#include "partition/random_partition.h"

using namespace cpt;

int main(int argc, char** argv) {
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    }
  }
  congest::SimOptions sim_opt;
  sim_opt.num_threads = threads;
  bench::header("E10: baseline & ablations",
                "Section 1.1: EN-based tester needs O(log^2 n); ours "
                "O(log n). Claim 1 vs Claim 14 contraction.");
  const double eps = 0.25;

  std::printf("-- (a) partition comparison (planar inputs)\n");
  std::printf("%-10s %-12s %-12s %-10s %-10s %-10s\n", "n", "algo", "rounds",
              "cut", "parts", "max-ecc");
  for (std::uint32_t side = 24; side <= 72; side += 24) {
    const Graph g = gen::triangulated_grid(side, side);
    {
      congest::Network net(g);
      congest::Simulator sim(net, sim_opt);
      congest::RoundLedger ledger;
      Stage1Options opt;
      opt.epsilon = eps;
      opt.adaptive = true;  // comparable practical schedules
      const Stage1Result r = run_stage1(sim, g, opt, ledger);
      const PartitionStats s = measure_partition(g, r.forest);
      std::printf("%-10u %-12s %-12llu %-10llu %-10u %-10u\n", g.num_nodes(),
                  "stage1", static_cast<unsigned long long>(ledger.total_rounds()),
                  static_cast<unsigned long long>(s.cut_edges), s.num_parts,
                  s.max_part_ecc);
    }
    {
      congest::Network net(g);
      congest::Simulator sim(net, sim_opt);
      congest::RoundLedger ledger;
      EnPartitionOptions opt;
      opt.epsilon = eps;
      opt.seed = 3;
      const EnPartitionResult r = run_en_partition(sim, g, opt, ledger);
      const PartitionStats s = measure_partition(g, r.forest);
      std::printf("%-10u %-12s %-12llu %-10llu %-10u %-10u\n", g.num_nodes(),
                  "elkin-neiman",
                  static_cast<unsigned long long>(ledger.total_rounds()),
                  static_cast<unsigned long long>(s.cut_edges), s.num_parts,
                  s.max_part_ecc);
    }
  }

  std::printf("\n-- (b) end-to-end tester comparison (detection on K5 blobs)\n");
  Rng rng(23);
  const Graph far_graph = gen::planar_with_k5_blobs(600, 80, rng);
  int ours = 0;
  int en = 0;
  std::uint64_t ours_rounds = 0;
  std::uint64_t en_rounds = 0;
  constexpr int kSeeds = 6;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    TesterOptions opt;
    opt.num_threads = threads;
    opt.epsilon = 0.2;
    opt.seed = seed;
    const TesterResult a = test_planarity(far_graph, opt);
    ours += a.verdict == Verdict::kReject;
    ours_rounds += a.rounds();
    EnTesterOptions eopt;
    eopt.epsilon = 0.2;
    eopt.seed = seed;
    const TesterResult b = test_planarity_en(far_graph, eopt);
    en += b.verdict == Verdict::kReject;
    en_rounds += b.rounds();
  }
  std::printf("ours:          detected %d/%d, avg rounds %llu\n", ours, kSeeds,
              static_cast<unsigned long long>(ours_rounds / kSeeds));
  std::printf("elkin-neiman:  detected %d/%d, avg rounds %llu\n", en, kSeeds,
              static_cast<unsigned long long>(en_rounds / kSeeds));

  std::printf("\n-- (c) ablation: peeling+heaviest edge (Claim 1) vs random "
              "selection (Claim 14)\n");
  std::printf("%-12s %-16s %-16s\n", "input", "phases-to-cut0(det)",
              "phases-to-cut0(rand)");
  for (const char* name : {"trigrid", "apollonian"}) {
    Rng grng(29);
    const Graph g = std::string(name) == "trigrid"
                        ? gen::triangulated_grid(32, 32)
                        : gen::apollonian(1024, grng);
    std::uint32_t det_phases = 0;
    {
      congest::Network net(g);
      congest::Simulator sim(net, sim_opt);
      congest::RoundLedger ledger;
      Stage1Options opt;
      opt.epsilon = eps;
      det_phases = run_stage1(sim, g, opt, ledger).phases_emulated;
    }
    std::uint32_t rand_phases = 0;
    {
      congest::Network net(g);
      congest::Simulator sim(net, sim_opt);
      congest::RoundLedger ledger;
      RandomPartitionOptions opt;
      opt.epsilon = eps;
      opt.delta = 0.1;
      opt.seed = 7;
      rand_phases = run_random_partition(sim, g, opt, ledger).phases_emulated;
    }
    std::printf("%-12s %-16u %-16u\n", name, det_phases, rand_phases);
  }
  std::printf(
      "\nHonest reading: (a/b) at laptop sizes the EN partition is CHEAPER\n"
      "in measured rounds -- its O(log n / eps) radius is tiny while our\n"
      "Stage I pays the strict Theta(log 1/eps)-phase schedule with its\n"
      "proof constants. The paper's O(log n) vs O(log^2 n) separation is\n"
      "asymptotic; what the experiment does show is the GUARANTEE gap: the\n"
      "Stage I cut bound is deterministic, EN's only holds whp (and its\n"
      "measured cut fluctuates). (c) the Claim-1 selection contracts at\n"
      "least as fast per phase as the Claim-14 selection on most inputs.\n");
  return 0;
}
