// E5 -- Theorem 2 / Claims 11, 12: the Omega(log n) lower-bound
// construction. For each n: G(n, c/n) after short-cycle surgery stays
// certifiably far from planar while its girth grows ~ log n -- so any
// one-sided tester with fewer than (girth/2 - 1) rounds sees only trees and
// must accept, while our tester (with its Theta(log n) budget) rejects.
#include <cmath>

#include "bench/bench_common.h"
#include "core/tester.h"
#include "lowerbound/construction.h"

using namespace cpt;

int main() {
  bench::header("E5: lower-bound construction",
                "Theorem 2: Omega(log n) rounds necessary; Claims 11/12: "
                "far-from-planar with girth Theta(log n)");
  std::printf("%-8s %-8s %-8s %-9s %-10s %-10s %-12s %-10s\n", "n", "m",
              "girth", "~ln n", "removed", "eps-cert", "tester", "rounds");
  for (std::uint32_t n = 1024; n <= 65536; n *= 4) {
    LowerBoundOptions opt;
    opt.n = n;
    opt.avg_degree = 12.0;
    opt.seed = 11;
    const LowerBoundInstance inst = build_lower_bound_instance(opt);
    TesterOptions topt;
    topt.epsilon = 0.1;
    topt.seed = 1;
    const TesterResult r = test_planarity(inst.graph, topt);
    std::printf("%-8u %-8u %-8u %-9.1f %-10llu %-10.3f %-12s %-10llu\n", n,
                inst.graph.num_edges(), inst.girth,
                std::log(static_cast<double>(n)),
                static_cast<unsigned long long>(inst.removed_edges),
                inst.certified_eps,
                r.verdict == Verdict::kReject ? "reject" : "ACCEPT?!",
                static_cast<unsigned long long>(r.rounds()));
  }
  std::printf(
      "\n-- low-degree variant (avg degree 4): girth growth is clearly\n"
      "visible; far-ness here rests on Claim 11's well-connectedness (the\n"
      "edge-excess certificate needs avg degree > 6) and detection runs\n"
      "through the Stage II sampling path instead of the arboricity check.\n");
  std::printf("%-8s %-8s %-8s %-9s %-12s %-10s\n", "n", "m", "girth",
              "~ln n", "tester", "rounds");
  for (std::uint32_t n = 1024; n <= 65536; n *= 4) {
    LowerBoundOptions opt;
    opt.n = n;
    opt.avg_degree = 4.0;
    opt.seed = 13;
    const LowerBoundInstance inst = build_lower_bound_instance(opt);
    TesterOptions topt;
    topt.epsilon = 0.1;
    topt.seed = 2;
    topt.stage1.adaptive = true;  // keep the run fast at 65k nodes
    const TesterResult r = test_planarity(inst.graph, topt);
    std::printf("%-8u %-8u %-8u %-9.1f %-12s %-10llu\n", n,
                inst.graph.num_edges(), inst.girth,
                std::log(static_cast<double>(n)),
                r.verdict == Verdict::kReject ? "reject" : "accept(!)",
                static_cast<unsigned long long>(r.rounds()));
  }
  std::printf(
      "\ngirth grows with log n while the instance stays Theta(1)-far:\n"
      "a one-sided algorithm limited to < girth/2 - 1 rounds sees only\n"
      "trees around every node and cannot produce a witness.\n");
  return 0;
}
