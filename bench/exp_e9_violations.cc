// E9 -- Corollary 9 (and the Claim 10 discrepancy). For graphs at
// controlled distance from planarity, counts the Definition-7 violating
// non-tree edges exhaustively and compares against the Corollary-9 lower
// bound (gamma-far => >= gamma*m violating edges). Also demonstrates the
// discrepancy this reproduction uncovered: planar graphs CAN have
// Definition-7 violations under BFS labeling (3x3 grid counterexample), so
// one-sidedness requires the certification gate (see DESIGN.md).
#include "bench/bench_common.h"
#include "congest/network.h"
#include "congest/primitives.h"
#include "congest/simulator.h"
#include "core/labels.h"
#include "core/violation.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/properties.h"
#include "planar/embedder.h"

using namespace cpt;

namespace {

// Centralized Definition-7 census for a whole (connected) graph: BFS tree
// from node 0, best-effort embedding, labels, exhaustive violation count.
struct Census {
  std::uint64_t nontree = 0;
  std::uint64_t violating = 0;
  bool planar_certified = false;
};

Census census(const Graph& g) {
  Census out;
  congest::Network net(g);
  congest::Simulator sim(net);
  std::vector<NodeId> part_root(g.num_nodes(), 0);
  congest::BfsForest bfs(part_root);
  sim.run(bfs);
  const EmbeddingResult emb = best_effort_embedding(g);
  out.planar_certified = emb.planar_certified;
  const auto kid =
      child_edge_labels(g, emb.rotation, bfs.parent_edge, bfs.children);
  // Centralized label computation.
  std::vector<Label> labels(g.num_nodes());
  std::vector<NodeId> stack{0};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (std::size_t i = 0; i < bfs.children[v].size(); ++i) {
      const NodeId w = g.other_endpoint(bfs.children[v][i], v);
      labels[w] = labels[v];
      labels[w].push_back(kid[v][i]);
      stack.push_back(w);
    }
  }
  std::vector<LabelPair> pairs;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Endpoints ep = g.endpoints(e);
    if (bfs.parent_edge[ep.u] == e || bfs.parent_edge[ep.v] == e) continue;
    pairs.push_back(LabelPair::normalized(labels[ep.u], labels[ep.v]));
  }
  out.nontree = pairs.size();
  out.violating = count_violating(pairs);
  return out;
}

}  // namespace

int main() {
  bench::header("E9: violating-edge density (Corollary 9)",
                "gamma-far => >= gamma * m violating edges; plus the "
                "Claim 10 counterexample");
  Rng rng(19);

  std::printf("-- (a) noise sweep: grid 24x24 plus k random edges\n");
  std::printf("%-8s %-8s %-10s %-12s %-12s %-14s\n", "extra", "m",
              "nontree", "violating", "viol/m", "dist-lb/m");
  const Graph base = gen::grid(24, 24);
  for (const EdgeId extra : {0u, 20u, 60u, 150u, 400u, 900u}) {
    const Graph g = extra == 0
                        ? base
                        : gen::planar_plus_random_edges(base, extra, rng);
    const Census c = census(g);
    const double dist_lb =
        static_cast<double>(planarity_distance_lower_bound(g)) /
        g.num_edges();
    std::printf("%-8u %-8u %-10llu %-12llu %-12.4f %-14.4f\n", extra,
                g.num_edges(), static_cast<unsigned long long>(c.nontree),
                static_cast<unsigned long long>(c.violating),
                static_cast<double>(c.violating) / g.num_edges(), dist_lb);
  }

  std::printf("\n-- (b) K33 unions: certified gamma = 1/9-far per component\n");
  for (const NodeId copies : {10u, 40u, 160u}) {
    const Graph g = gen::disjoint_copies(gen::complete_bipartite(3, 3), copies);
    // Census per component is identical; run on one K33.
    const Census c = census(gen::complete_bipartite(3, 3));
    std::printf("copies=%-5u per-K33: nontree=%llu violating=%llu "
                "(Corollary 9 bound: >= m/9 = 1)\n",
                copies, static_cast<unsigned long long>(c.nontree),
                static_cast<unsigned long long>(c.violating));
  }

  std::printf("\n-- (c) DISCREPANCY (Claim 10): planar graphs with violations\n");
  std::printf("%-18s %-10s %-12s %-10s\n", "planar input", "nontree",
              "violating", "certified");
  for (const auto& [name, g] :
       std::vector<std::pair<const char*, Graph>>{
           {"grid 3x3", gen::grid(3, 3)},
           {"grid 8x8", gen::grid(8, 8)},
           {"trigrid 6x6", gen::triangulated_grid(6, 6)},
           {"apollonian 64", gen::apollonian(64, rng)}}) {
    const Census c = census(g);
    std::printf("%-18s %-10llu %-12llu %-10s\n", name,
                static_cast<unsigned long long>(c.nontree),
                static_cast<unsigned long long>(c.violating),
                c.planar_certified ? "yes" : "no");
  }
  std::printf(
      "\nViolations > 0 on certified-planar inputs confirm that Claim 10 as\n"
      "stated does not hold for BFS trees; the tester stays one-sided via\n"
      "the embedding-certification gate (DESIGN.md, 'Discrepancy').\n");
  return 0;
}
