#include "bench/bench_json.h"

#include <cinttypes>
#include <cstdio>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace cpt::bench {

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string render_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void add_provenance(BenchJson& out) {
#if defined(CPT_GIT_SHA)
  out.meta("git_sha", CPT_GIT_SHA);
#else
  out.meta("git_sha", "unknown");
#endif
#if defined(CPT_BUILD_TYPE)
  out.meta("build", CPT_BUILD_TYPE);
#elif defined(NDEBUG)
  out.meta("build", "release");
#else
  out.meta("build", "debug");
#endif
#if defined(CPT_BUILD_FLAGS)
  out.meta("build_flags", CPT_BUILD_FLAGS);
#else
  out.meta("build_flags", "");
#endif
  std::string host = "unknown";
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {};
  if (gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') host = buf;
#endif
  out.meta("hostname", host);
  out.meta("hardware_concurrency",
           static_cast<std::int64_t>(std::thread::hardware_concurrency()));
}

void BenchJson::meta(const std::string& key, const std::string& value) {
  std::string rendered;
  append_escaped(rendered, value);
  meta_.push_back({key, std::move(rendered)});
}

void BenchJson::meta(const std::string& key, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  meta_.push_back({key, buf});
}

void BenchJson::metric(const std::string& name, double value,
                       const std::string& unit) {
  metrics_.push_back({name, value, unit});
}

std::string BenchJson::to_string() const {
  std::string out = "{\n  \"name\": ";
  append_escaped(out, name_);
  for (const Meta& m : meta_) {
    out += ",\n  ";
    append_escaped(out, m.key);
    out += ": ";
    out += m.value;
  }
  out += ",\n  \"metrics\": [";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_escaped(out, metrics_[i].name);
    out += ", \"value\": ";
    out += render_double(metrics_[i].value);
    out += ", \"unit\": ";
    append_escaped(out, metrics_[i].unit);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool BenchJson::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_string();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace cpt::bench
