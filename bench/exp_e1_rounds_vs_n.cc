// E1 -- Theorem 1: round complexity O(log n * poly(1/eps)).
//
// Sweeps n over planar families and reports measured rounds, for the strict
// schedule (full t = Theta(log 1/eps) phases; at laptop sizes the measured
// rounds are dominated by the merged parts' diameters, since 4^t far
// exceeds graph diameters -- the pre-asymptotic regime) and the adaptive
// schedule (stops at the eps*m/2 cut target; exposes the Theta(log n)
// super-round signature cleanly). rounds/log2(n) should be ~flat for the
// adaptive rows.
#include <cmath>

#include "bench/bench_common.h"
#include "core/tester.h"
#include "graph/generators.h"

using namespace cpt;

int main() {
  bench::header("E1: rounds vs n (planar inputs)",
                "Theorem 1: O(log n * poly(1/eps)) rounds");
  std::printf("%-10s %-8s %-9s %-12s %-12s %-12s %-10s\n", "family", "n",
              "mode", "rounds", "rounds/lg n", "stage1-ph", "verdict");
  Rng rng(1);
  for (const char* family : {"trigrid", "apollonian"}) {
    for (std::uint32_t side = 16; side <= 128; side *= 2) {
      const NodeId n = side * side;
      const Graph g = std::string(family) == "trigrid"
                          ? gen::triangulated_grid(side, side)
                          : gen::apollonian(n, rng);
      for (const bool adaptive : {false, true}) {
        TesterOptions opt;
        opt.epsilon = 0.25;
        opt.seed = 7;
        opt.stage1.adaptive = adaptive;
        const TesterResult r = test_planarity(g, opt);
        std::printf("%-10s %-8u %-9s %-12llu %-12.0f %-12u %-10s\n", family,
                    g.num_nodes(), adaptive ? "adaptive" : "strict",
                    static_cast<unsigned long long>(r.rounds()),
                    static_cast<double>(r.rounds()) /
                        std::log2(static_cast<double>(g.num_nodes())),
                    r.stage1_phases_emulated,
                    r.verdict == Verdict::kAccept ? "accept" : "REJECT");
      }
    }
  }
  std::printf(
      "\nNote: strict rows include the fast-forwarded full phase schedule\n"
      "(t = %u phases at eps = 0.25); adaptive rows stop at the cut target\n"
      "and show the log-n-dominated regime the theorem describes.\n",
      stage1_theory_phase_count(0.25, 3));
  return 0;
}
