// E1 -- Theorem 1: round complexity O(log n * poly(1/eps)).
//
// Sweeps n over planar families and reports measured rounds, for the strict
// schedule (full t = Theta(log 1/eps) phases; at laptop sizes the measured
// rounds are dominated by the merged parts' diameters, since 4^t far
// exceeds graph diameters -- the pre-asymptotic regime) and the adaptive
// schedule (stops at the eps*m/2 cut target; exposes the Theta(log n)
// super-round signature cleanly). rounds/log2(n) should be ~flat for the
// adaptive rows.
//
// Driven by the scenario engine: the sweep definition lives in
// bench/manifests/e1.json (override with --manifest=PATH); --threads=N runs
// the independent simulations concurrently -- measured rounds/messages are
// engine-invariant (scenario_test.cc pins engine == direct tester calls).
#include <cmath>

#include "bench/bench_common.h"
#include "bench/manifest_args.h"
#include "partition/partition.h"
#include "scenario/engine.h"
#include "scenario/manifest.h"

using namespace cpt;
using namespace cpt::scenario;

int main(int argc, char** argv) {
  Manifest manifest;
  BatchOptions options;
  std::string manifest_path;
  if (const int rc = bench::parse_manifest_args(
          argc, argv, CPT_MANIFEST_DIR "/e1.json", &manifest, &options,
          &manifest_path)) {
    return rc;
  }
  bench::header("E1: rounds vs n (planar inputs)",
                "Theorem 1: O(log n * poly(1/eps)) rounds");
  const BatchResult batch = run_batch(manifest, options);
  std::printf("%-22s %-8s %-9s %-12s %-12s %-12s %-10s\n", "family", "n",
              "mode", "rounds", "rounds/lg n", "stage1-ph", "verdict");
  for (std::size_t j = 0; j < batch.jobs.size(); ++j) {
    const Job& job = batch.jobs[j];
    const JobResult& r = batch.results[j];
    std::printf("%-22s %-8u %-9s %-12llu %-12.0f %-12u %-10s\n",
                job.instance.family.c_str(), r.n,
                job.adaptive ? "adaptive" : "strict",
                static_cast<unsigned long long>(r.rounds),
                static_cast<double>(r.rounds) /
                    std::log2(static_cast<double>(r.n)),
                r.stage1_phases,
                r.verdict == Verdict::kAccept ? "accept" : "REJECT");
  }
  std::printf(
      "\nNote: strict rows include the fast-forwarded full phase schedule\n"
      "(t = %u phases at eps = 0.25); adaptive rows stop at the cut target\n"
      "and show the log-n-dominated regime the theorem describes.\n",
      stage1_theory_phase_count(0.25, 3));
  std::printf("(sweep definition: %s)\n", manifest_path.c_str());
  return 0;
}
