// Minimal JSON emitter for benchmark results (BENCH_*.json files).
//
// Every experiment that tracks a perf trajectory across PRs writes one
// BENCH_<name>.json: a flat object of run-level metadata plus a "metrics"
// array of named measurements. See bench/README.md for the schema and the
// recorded baselines. No third-party JSON dependency: the writer escapes
// strings itself and prints doubles with enough digits to round-trip.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cpt::bench {

// Peak resident set size of this process so far, in bytes (0 if the
// platform does not report it).
std::uint64_t peak_rss_bytes();

class BenchJson;

// Stamps the shared provenance block every BENCH_*.json carries: git
// SHA and build type/flags (CPT_GIT_SHA / CPT_BUILD_TYPE /
// CPT_BUILD_FLAGS compile definitions, "unknown"/"" when absent),
// hostname, and std::thread::hardware_concurrency. Call once, before
// the experiment-specific meta, so trajectories across PRs identify
// the machine and commit that produced them.
void add_provenance(BenchJson& out);

class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  // Run-level metadata (git describe, build type, host...).
  void meta(const std::string& key, const std::string& value);
  void meta(const std::string& key, std::int64_t value);

  // One named measurement with a unit, e.g. ("stage1/messages_per_sec",
  // 1.2e7, "1/s"). Metrics appear in insertion order.
  void metric(const std::string& name, double value, const std::string& unit);

  // Serializes and writes the file; returns false on I/O failure.
  bool write(const std::string& path) const;

  std::string to_string() const;

 private:
  struct Meta {
    std::string key;
    std::string value;  // pre-rendered JSON value
  };
  struct Metric {
    std::string name;
    double value;
    std::string unit;
  };

  std::string name_;
  std::vector<Meta> meta_;
  std::vector<Metric> metrics_;
};

}  // namespace cpt::bench
