// E2 -- Theorem 1: poly(1/eps) dependence of the round complexity.
// Fixed planar input, eps sweep; reports rounds, the phase budget
// t = Theta(log 1/eps) and the measured part diameters.
//
// Driven by the scenario engine: the eps axis lives in
// bench/manifests/e2.json (override with --manifest=PATH); --threads=N runs
// the eps points concurrently. Per-job results are identical to direct
// test_planarity calls on the same instance (pinned by scenario_test.cc).
#include "bench/bench_common.h"
#include "bench/manifest_args.h"
#include "scenario/engine.h"
#include "scenario/manifest.h"

using namespace cpt;
using namespace cpt::scenario;

int main(int argc, char** argv) {
  Manifest manifest;
  BatchOptions options;
  std::string manifest_path;
  if (const int rc = bench::parse_manifest_args(
          argc, argv, CPT_MANIFEST_DIR "/e2.json", &manifest, &options,
          &manifest_path)) {
    return rc;
  }
  bench::header("E2: rounds vs 1/eps (triangulated grid, n = 4096)",
                "Theorem 1: poly(1/eps) factor; Claim 3: t = Theta(log 1/eps)");
  const BatchResult batch = run_batch(manifest, options);
  std::printf("%-8s %-8s %-12s %-12s %-10s %-12s\n", "eps", "phases",
              "rounds", "cut-edges", "parts", "max-ecc");
  for (std::size_t j = 0; j < batch.jobs.size(); ++j) {
    const Job& job = batch.jobs[j];
    const JobResult& r = batch.results[j];
    std::printf("%-8.2f %-8u %-12llu %-12llu %-10u %-12u\n", job.epsilon,
                r.stage1_phases_total,
                static_cast<unsigned long long>(r.rounds),
                static_cast<unsigned long long>(r.cut_edges), r.num_parts,
                r.max_part_ecc);
  }
  std::printf("\nSmaller eps => more phases, bigger merged parts, more rounds.\n");
  std::printf("(sweep definition: %s)\n", manifest_path.c_str());
  return 0;
}
