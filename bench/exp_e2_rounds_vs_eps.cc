// E2 -- Theorem 1: poly(1/eps) dependence of the round complexity.
// Fixed planar input, eps sweep; reports rounds, the phase budget
// t = Theta(log 1/eps) and the measured part diameters.
#include "bench/bench_common.h"
#include "core/tester.h"
#include "graph/generators.h"

using namespace cpt;

int main() {
  bench::header("E2: rounds vs 1/eps (triangulated grid, n = 4096)",
                "Theorem 1: poly(1/eps) factor; Claim 3: t = Theta(log 1/eps)");
  const Graph g = gen::triangulated_grid(64, 64);
  std::printf("%-8s %-8s %-12s %-12s %-10s %-12s\n", "eps", "phases",
              "rounds", "cut-edges", "parts", "max-ecc");
  for (const double eps : {0.5, 0.4, 0.3, 0.25, 0.2, 0.15, 0.1}) {
    TesterOptions opt;
    opt.epsilon = eps;
    opt.seed = 3;
    const TesterResult r = test_planarity(g, opt);
    std::printf("%-8.2f %-8u %-12llu %-12llu %-10u %-12u\n", eps,
                r.stage1_phases_total,
                static_cast<unsigned long long>(r.rounds()),
                static_cast<unsigned long long>(r.partition.cut_edges),
                r.partition.num_parts, r.partition.max_part_ecc);
  }
  std::printf("\nSmaller eps => more phases, bigger merged parts, more rounds.\n");
  return 0;
}
