// E11 -- google-benchmark microbenchmarks of the computational kernels:
// LR planarity test, LR embedding extraction, the simulator's BFS pass,
// and the violation sweep.
#include <benchmark/benchmark.h>

#include "congest/network.h"
#include "congest/primitives.h"
#include "congest/simulator.h"
#include "core/violation.h"
#include "graph/generators.h"
#include "planar/lr_planarity.h"

namespace cpt {
namespace {

void BM_LrPlanarityPlanar(benchmark::State& state) {
  Rng rng(1);
  const Graph g = gen::apollonian(static_cast<NodeId>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_planar(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_LrPlanarityPlanar)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_LrPlanarityRejects(benchmark::State& state) {
  Rng rng(2);
  const Graph g = gen::planar_plus_random_edges(
      gen::apollonian(static_cast<NodeId>(state.range(0)), rng), 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_planar(g));
  }
}
BENCHMARK(BM_LrPlanarityRejects)->Arg(1 << 10)->Arg(1 << 13);

void BM_LrEmbedding(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::apollonian(static_cast<NodeId>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lr_planar_embedding(g));
  }
}
BENCHMARK(BM_LrEmbedding)->Arg(1 << 10)->Arg(1 << 13);

void BM_SimulatorBfsPass(benchmark::State& state) {
  const auto side = static_cast<NodeId>(state.range(0));
  const Graph g = gen::triangulated_grid(side, side);
  congest::Network net(g);
  congest::Simulator sim(net);
  std::vector<NodeId> part_root(g.num_nodes(), 0);
  for (auto _ : state) {
    congest::BfsForest bfs(part_root);
    benchmark::DoNotOptimize(sim.run(bfs));
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_SimulatorBfsPass)->Arg(32)->Arg(64)->Arg(128);

void BM_ViolationSweep(benchmark::State& state) {
  Rng rng(4);
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<LabelPair> edges;
  edges.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    Label a(1 + rng.next_below(5));
    Label b(1 + rng.next_below(5));
    for (auto& x : a) x = static_cast<std::uint32_t>(rng.next_below(64));
    for (auto& x : b) x = static_cast<std::uint32_t>(rng.next_below(64));
    if (a == b) b.push_back(1);
    edges.push_back(LabelPair::normalized(std::move(a), std::move(b)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_violating(edges));
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_ViolationSweep)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace
}  // namespace cpt

BENCHMARK_MAIN();
