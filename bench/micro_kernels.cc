// Google-benchmark microbenchmarks of the computational kernels: LR
// planarity test, LR embedding extraction, the simulator's BFS and
// saturated-delivery passes (serial, and multi-worker under both the
// flight-union and K-way-merge delivery strategies), bitset drain/union,
// and the violation sweep. Besides the normal google-benchmark output,
// results are mirrored into BENCH_micro_kernels.json (shared bench_json
// schema, see bench/README.md) so the kernel trajectory is tracked
// alongside BENCH_congest_sim.json and BENCH_thread_scaling.json.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_json.h"
#include "congest/network.h"
#include "congest/primitives.h"
#include "congest/simulator.h"
#include "core/violation.h"
#include "graph/generators.h"
#include "planar/lr_planarity.h"
#include "util/indexed_bitset.h"

namespace cpt {
namespace {

void BM_LrPlanarityPlanar(benchmark::State& state) {
  Rng rng(1);
  const Graph g = gen::apollonian(static_cast<NodeId>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_planar(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_LrPlanarityPlanar)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_LrPlanarityRejects(benchmark::State& state) {
  Rng rng(2);
  const Graph g = gen::planar_plus_random_edges(
      gen::apollonian(static_cast<NodeId>(state.range(0)), rng), 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_planar(g));
  }
}
BENCHMARK(BM_LrPlanarityRejects)->Arg(1 << 10)->Arg(1 << 13);

void BM_LrEmbedding(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::apollonian(static_cast<NodeId>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lr_planar_embedding(g));
  }
}
BENCHMARK(BM_LrEmbedding)->Arg(1 << 10)->Arg(1 << 13);

void BM_SimulatorBfsPass(benchmark::State& state) {
  const auto side = static_cast<NodeId>(state.range(0));
  const Graph g = gen::triangulated_grid(side, side);
  congest::Network net(g);
  congest::Simulator sim(net);
  std::vector<NodeId> part_root(g.num_nodes(), 0);
  for (auto _ : state) {
    congest::BfsForest bfs(part_root);
    benchmark::DoNotOptimize(sim.run(bfs));
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_SimulatorBfsPass)->Arg(32)->Arg(64)->Arg(128);

// Full CONGEST load: every node echoes on every port each round. Exercises
// only the delivery engine (send + bucketed scatter + inbox assembly).
void BM_SimulatorSaturatedDelivery(benchmark::State& state) {
  const auto side = static_cast<NodeId>(state.range(0));
  const Graph g = gen::triangulated_grid(side, side);
  congest::Network net(g);
  congest::Simulator sim(net);

  class Saturate : public congest::Program {
   public:
    void begin(congest::Exec& ex) override {
      const NodeId n = ex.network().num_nodes();
      for (NodeId v = 0; v < n; ++v) {
        for (std::uint32_t p = 0; p < ex.network().port_count(v); ++p) {
          ex.send(v, p, congest::Msg::make(p));
        }
      }
    }
    void on_wake(congest::Exec& ex, NodeId v,
                 std::span<const congest::Inbound> inbox) override {
      if (ex.current_round() >= 8) return;
      for (const congest::Inbound& in : inbox) ex.send(v, in.port, in.msg);
    }
  };

  std::uint64_t messages = 0;
  for (auto _ : state) {
    Saturate sat;
    const congest::PassResult r = sim.run(sat);
    messages += r.messages;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
}
BENCHMARK(BM_SimulatorSaturatedDelivery)->Arg(64)->Arg(128)->Arg(256);

// Multi-worker delivery strategies head to head on the same saturated
// load: per-shard word-level flight unions (default) vs the K-way
// next_at_least cursor merge. parallel_grain=1 keeps every round on the
// sharded path so the delivery strategy is the only difference. Counts are
// identical (pinned by simulator_test); only wall time may differ.
void saturated_delivery_threaded(benchmark::State& state,
                                 bool union_delivery) {
  const auto side = static_cast<NodeId>(state.range(0));
  const Graph g = gen::triangulated_grid(side, side);
  congest::Network net(g);
  congest::SimOptions sopt;
  sopt.num_threads = static_cast<unsigned>(state.range(1));
  sopt.parallel_grain = 1;
  sopt.union_delivery = union_delivery;
  congest::Simulator sim(net, sopt);

  class Saturate : public congest::Program {
   public:
    void begin(congest::Exec& ex) override {
      const NodeId n = ex.network().num_nodes();
      for (NodeId v = 0; v < n; ++v) {
        for (std::uint32_t p = 0; p < ex.network().port_count(v); ++p) {
          ex.send(v, p, congest::Msg::make(p));
        }
      }
    }
    void on_wake(congest::Exec& ex, NodeId v,
                 std::span<const congest::Inbound> inbox) override {
      if (ex.current_round() >= 8) return;
      for (const congest::Inbound& in : inbox) ex.send(v, in.port, in.msg);
    }
  };

  std::uint64_t messages = 0;
  for (auto _ : state) {
    Saturate sat;
    const congest::PassResult r = sim.run(sat);
    messages += r.messages;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
}

void BM_SimulatorDeliveryUnion(benchmark::State& state) {
  saturated_delivery_threaded(state, /*union_delivery=*/true);
}
BENCHMARK(BM_SimulatorDeliveryUnion)
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({256, 4});

void BM_SimulatorDeliveryMerge(benchmark::State& state) {
  saturated_delivery_threaded(state, /*union_delivery=*/false);
}
BENCHMARK(BM_SimulatorDeliveryMerge)
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({256, 4});

// The word-level union feeding the default delivery path: K sparse source
// bitsets ORed into one pooled target, then cleared.
void BM_IndexedBitsetUnionFrom(benchmark::State& state) {
  constexpr std::size_t kBits = 1 << 22;
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto sources = static_cast<std::size_t>(state.range(1));
  std::vector<IndexedBitset> src(sources);
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (IndexedBitset& s : src) {
    s.reset(kBits);
    for (std::size_t i = 0; i < k; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      s.insert(x & (kBits - 1));
    }
  }
  IndexedBitset target(kBits);
  for (auto _ : state) {
    std::size_t added = 0;
    for (const IndexedBitset& s : src) added += target.union_from(s);
    benchmark::DoNotOptimize(added);
    target.clear();
  }
  state.SetItemsProcessed(state.iterations() * k * sources);
}
BENCHMARK(BM_IndexedBitsetUnionFrom)->Args({1 << 12, 4})->Args({1 << 16, 4});

// The ordered-bitset min-extraction underlying sort-free delivery.
void BM_IndexedBitsetDrain(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  IndexedBitset set(1 << 22);
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (auto _ : state) {
    for (std::size_t i = 0; i < k; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      set.insert(x & ((1 << 22) - 1));
    }
    std::size_t sum = 0;
    while (!set.empty()) sum += set.pop_front();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_IndexedBitsetDrain)->Arg(1 << 10)->Arg(1 << 16);

void BM_ViolationSweep(benchmark::State& state) {
  Rng rng(4);
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<LabelPair> edges;
  edges.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    Label a(1 + rng.next_below(5));
    Label b(1 + rng.next_below(5));
    for (auto& x : a) x = static_cast<std::uint32_t>(rng.next_below(64));
    for (auto& x : b) x = static_cast<std::uint32_t>(rng.next_below(64));
    if (a == b) b.push_back(1);
    edges.push_back(LabelPair::normalized(std::move(a), std::move(b)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_violating(edges));
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_ViolationSweep)->Arg(1 << 10)->Arg(1 << 14);

// Mirrors every benchmark result into the BENCH_*.json trajectory file
// while still printing the normal console report.
class JsonTrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTrajectoryReporter(bench::BenchJson* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      out_->metric(run.benchmark_name() + "/real_time",
                   run.GetAdjustedRealTime(), "ns");
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        out_->metric(run.benchmark_name() + "/items_per_second",
                     items->second.value, "1/s");
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchJson* out_;
};

}  // namespace
}  // namespace cpt

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  cpt::bench::BenchJson out("micro_kernels");
  cpt::bench::add_provenance(out);
  cpt::JsonTrajectoryReporter reporter(&out);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  out.meta("peak_rss_bytes",
           static_cast<std::int64_t>(cpt::bench::peak_rss_bytes()));
  if (!out.write("BENCH_micro_kernels.json")) {
    std::fprintf(stderr, "failed to write BENCH_micro_kernels.json\n");
    return 1;
  }
  return 0;
}
