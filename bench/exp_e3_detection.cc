// E3 -- Theorem 1: one-sided error. Planar inputs must be accepted always;
// eps-far inputs rejected with probability 1 - 1/poly(n). Reports
// accept/reject rates over tester seeds per family.
//
// Driven by the scenario engine: the family matrix and trial counts live in
// bench/manifests/e3.json (override with --manifest=PATH); --threads=N runs
// the trials concurrently. Per-trial results are identical to direct
// test_planarity calls on the same instance (pinned by scenario_test.cc).
#include "bench/bench_common.h"
#include "bench/manifest_args.h"
#include "graph/properties.h"
#include "planar/lr_planarity.h"
#include "scenario/aggregate.h"
#include "scenario/engine.h"
#include "scenario/manifest.h"

using namespace cpt;
using namespace cpt::scenario;

int main(int argc, char** argv) {
  Manifest manifest;
  BatchOptions options;
  std::string manifest_path;
  if (const int rc = bench::parse_manifest_args(
          argc, argv, CPT_MANIFEST_DIR "/e3.json", &manifest, &options,
          &manifest_path)) {
    return rc;
  }
  bench::header("E3: one-sided detection",
                "Theorem 1: planar => all accept; eps-far => reject whp");
  const BatchResult batch = run_batch(manifest, options);
  const std::vector<CellAggregate> cells = aggregate_cells(batch);

  std::printf("%-46s %-8s %-8s %-10s %-10s %-14s\n", "scenario", "n", "m",
              "accepts", "rejects", "dist-lb (m-3n+6)");
  std::size_t job_cursor = 0;
  for (const CellAggregate& cell : cells) {
    // The distance lower bound needs the concrete graph; rebuild the
    // cell's first instance (cheap, and bit-identical by the seed
    // contract).
    while (job_cursor < batch.jobs.size() &&
           batch.jobs[job_cursor].cell_key() != cell.key) {
      ++job_cursor;
    }
    const Graph g = build_instance(batch.jobs[job_cursor].instance);
    const bool planar = is_planar(g);
    std::printf("%-46s %-8u %-8u %-10u %-10u %-14llu\n", cell.scenario.c_str(),
                cell.n_max, cell.m_max, cell.accepts, cell.rejects,
                static_cast<unsigned long long>(
                    planarity_distance_lower_bound(g)));
    if (planar && cell.rejects > 0) {
      std::printf("  !! ONE-SIDEDNESS VIOLATION\n");
    }
    if (!planar && cell.rejects < cell.jobs) {
      std::printf("  (missed detections: %u/%u)\n", cell.jobs - cell.rejects,
                  cell.jobs);
    }
  }
  std::printf("(sweep definition: %s)\n", manifest_path.c_str());
  return 0;
}
