// E3 -- Theorem 1: one-sided error. Planar inputs must be accepted always;
// eps-far inputs rejected with probability 1 - 1/poly(n). Reports
// accept/reject rates over seeds per family.
#include "bench/bench_common.h"
#include "core/tester.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/properties.h"

using namespace cpt;

namespace {

struct Row {
  const char* family;
  Graph graph;
  bool planar;
};

}  // namespace

int main() {
  bench::header("E3: one-sided detection",
                "Theorem 1: planar => all accept; eps-far => reject whp");
  Rng rng(5);
  std::vector<Row> rows;
  rows.push_back({"grid 32x32 (planar)", gen::grid(32, 32), true});
  rows.push_back({"apollonian 1k (planar)", gen::apollonian(1000, rng), true});
  rows.push_back({"rnd-planar 1k (planar)", gen::random_planar(1000, 2400, rng), true});
  rows.push_back({"tree 2k (planar)", gen::random_tree(2000, rng), true});
  rows.push_back({"K5 x 60 (eps>=0.1-far)", gen::disjoint_copies(gen::complete(5), 60), false});
  rows.push_back({"K33 x 60 (1/9-far)",
                  gen::disjoint_copies(gen::complete_bipartite(3, 3), 60), false});
  rows.push_back({"K5-blobs (far)", gen::planar_with_k5_blobs(400, 60, rng), false});
  rows.push_back({"G(n,12/n) n=800 (far)", gen::gnp(800, 12.0 / 800, rng), false});
  rows.push_back({"grid+6% noise (far)",
                  gen::planar_plus_random_edges(gen::grid(24, 24),
                                                /*extra=*/260, rng),
                  false});

  constexpr int kSeeds = 10;
  std::printf("%-26s %-8s %-8s %-10s %-10s %-14s\n", "family", "n", "m",
              "accepts", "rejects", "dist-lb (m-3n+6)");
  for (const Row& row : rows) {
    int accepts = 0;
    int rejects = 0;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      TesterOptions opt;
      opt.epsilon = 0.1;
      opt.seed = seed;
      const TesterResult r = test_planarity(row.graph, opt);
      if (r.verdict == Verdict::kAccept) ++accepts;
      if (r.verdict == Verdict::kReject) ++rejects;
    }
    std::printf("%-26s %-8u %-8u %-10d %-10d %-14llu\n", row.family,
                row.graph.num_nodes(), row.graph.num_edges(), accepts, rejects,
                static_cast<unsigned long long>(
                    planarity_distance_lower_bound(row.graph)));
    if (row.planar && rejects > 0) {
      std::printf("  !! ONE-SIDEDNESS VIOLATION\n");
    }
    if (!row.planar && rejects < kSeeds) {
      std::printf("  (missed detections: %d/%d)\n", kSeeds - rejects, kSeeds);
    }
  }
  return 0;
}
