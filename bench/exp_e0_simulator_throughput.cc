// E0 -- delivery-engine throughput of the CONGEST simulator. Every other
// experiment (E1..E10) is bottlenecked by Simulator::run, so this is the
// one perf trajectory tracked across PRs: it writes BENCH_congest_sim.json
// (schema in bench/README.md) with messages/sec and rounds/sec for three
// workloads on a triangulated grid:
//   * stage1    -- the paper's Stage I partition (many short passes; mixes
//                  delivery with host-side merge logic),
//   * bfs       -- repeated BfsForest waves (bursty, message-dense rounds),
//   * saturate  -- every node sends on every port every round (pure
//                  delivery-engine stress; the headline messages/sec).
//
// Usage: exp_e0_simulator_throughput [--grid=256] [--reps=3] [--threads=1]
//                                    [--out=BENCH_congest_sim.json]
// --threads sets the simulator worker count (deterministic: message and
// round counts are identical at every value; only wall time changes). The
// JSON carries it as meta "threads".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "congest/metrics.h"
#include "congest/network.h"
#include "congest/primitives.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "partition/part_forest.h"
#include "partition/partition.h"

namespace cpt {
namespace {

// Every node sends on every port each round, for `rounds` rounds: the
// densest CONGEST-legal load (one message per directed edge per round).
class Saturate : public congest::Program {
 public:
  explicit Saturate(std::uint64_t rounds) : rounds_(rounds) {}

  void begin(congest::Exec& ex) override {
    const NodeId n = ex.network().num_nodes();
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint32_t p = 0; p < ex.network().port_count(v); ++p) {
        ex.send(v, p, congest::Msg::make(p));
      }
    }
  }

  void on_wake(congest::Exec& ex, NodeId v,
               std::span<const congest::Inbound> inbox) override {
    if (ex.current_round() >= rounds_) return;
    for (const congest::Inbound& in : inbox) {
      ex.send(v, in.port, in.msg);
    }
  }

 private:
  std::uint64_t rounds_;
};

// Stage I's message-dense pass: the peeling announce-exchange (pass A of
// the forest decomposition) on singleton parts — every node announces its
// part root on every port, receivers record the neighbor roots. One
// simulator pass per super-round, repeated `reps` times.
class PeelAnnounce : public congest::Program {
 public:
  PeelAnnounce(const Graph& g, const PartForest& pf) : g_(&g), pf_(&pf) {
    neighbor_root.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      neighbor_root[v].assign(g.degree(v), kNoNode);
    }
  }

  void begin(congest::Exec& ex) override {
    for (NodeId v = 0; v < g_->num_nodes(); ++v) {
      const auto root = static_cast<std::int64_t>(pf_->root[v]);
      for (std::uint32_t p = 0; p < ex.network().port_count(v); ++p) {
        ex.send(v, p, congest::Msg::make(10, root));
      }
    }
  }

  void on_wake(congest::Exec&, NodeId v,
               std::span<const congest::Inbound> inbox) override {
    for (const congest::Inbound& in : inbox) {
      neighbor_root[v][in.port] = static_cast<NodeId>(in.msg.w[0]);
    }
  }

  std::vector<std::vector<NodeId>> neighbor_root;

 private:
  const Graph* g_;
  const PartForest* pf_;
};

struct Throughput {
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
  double seconds = 0;

  double messages_per_sec() const {
    return seconds > 0 ? static_cast<double>(messages) / seconds : 0;
  }
  double rounds_per_sec() const {
    return seconds > 0 ? static_cast<double>(rounds) / seconds : 0;
  }
};

Throughput best_of(int reps, const std::function<Throughput()>& run) {
  Throughput best;
  for (int i = 0; i < reps; ++i) {
    const Throughput t = run();
    if (best.seconds == 0 || t.seconds < best.seconds) best = t;
  }
  return best;
}

void report(bench::BenchJson& out, const char* workload, const Throughput& t) {
  std::printf("  %-8s : %12llu msgs  %8llu rounds  %8.3fs  %12.0f msg/s\n",
              workload, static_cast<unsigned long long>(t.messages),
              static_cast<unsigned long long>(t.rounds), t.seconds,
              t.messages_per_sec());
  const std::string prefix(workload);
  out.metric(prefix + "/messages", static_cast<double>(t.messages), "1");
  out.metric(prefix + "/rounds", static_cast<double>(t.rounds), "1");
  out.metric(prefix + "/wall", t.seconds, "s");
  out.metric(prefix + "/messages_per_sec", t.messages_per_sec(), "1/s");
  out.metric(prefix + "/rounds_per_sec", t.rounds_per_sec(), "1/s");
}

}  // namespace
}  // namespace cpt

int main(int argc, char** argv) {
  using namespace cpt;
  NodeId side = 256;
  int reps = 3;
  unsigned threads = 0;
  std::string out_path = "BENCH_congest_sim.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--grid=", 7) == 0) {
      side = static_cast<NodeId>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", argv[i]);
      return 2;
    }
  }

  bench::header("E0: simulator delivery-engine throughput",
                "wall-clock should track the simulated round/message counts");
  const Graph g = gen::triangulated_grid(side, side);
  std::printf("triangulated_grid(%u,%u): n=%u m=%u, best of %d reps\n",
              side, side, g.num_nodes(), g.num_edges(), reps);
  congest::Network net(g);
  congest::SimOptions sim_opt;
  sim_opt.num_threads = threads;
  congest::Simulator sim(net, sim_opt);
  std::printf("simulator workers: %u\n", sim.num_workers());

  bench::BenchJson out("congest_sim_throughput");
  bench::add_provenance(out);
  out.meta("graph", "triangulated_grid");
  out.meta("threads", static_cast<std::int64_t>(sim.num_workers()));
  out.meta("side", static_cast<std::int64_t>(side));
  out.meta("nodes", static_cast<std::int64_t>(g.num_nodes()));
  out.meta("edges", static_cast<std::int64_t>(g.num_edges()));

  // Stage I partition pass (the paper's Theorem 3 machinery).
  const Throughput stage1 = best_of(reps, [&] {
    congest::RoundLedger ledger;
    Stage1Options opt;
    bench::Timer timer;
    const Stage1Result r = run_stage1(sim, g, opt, ledger);
    Throughput t{ledger.total_messages(), ledger.total_rounds(),
                 timer.seconds()};
    if (r.rejected) std::fprintf(stderr, "unexpected stage1 reject\n");
    return t;
  });
  report(out, "stage1", stage1);

  // Stage I's dense pass: the peeling announce-exchange, one simulator
  // pass per emulated super-round.
  const Throughput peel_a = best_of(reps, [&] {
    const PartForest pf = PartForest::singletons(g.num_nodes());
    PeelAnnounce announce(g, pf);
    Throughput t;
    bench::Timer timer;
    for (int i = 0; i < 32; ++i) {
      const congest::PassResult r = sim.run(announce);
      t.messages += r.messages;
      t.rounds += r.rounds;
    }
    t.seconds = timer.seconds();
    return t;
  });
  report(out, "stage1_pass_a", peel_a);

  // Repeated BFS waves from node 0.
  const Throughput bfs = best_of(reps, [&] {
    const std::vector<NodeId> part_root(g.num_nodes(), 0);
    Throughput t;
    bench::Timer timer;
    for (int i = 0; i < 5; ++i) {
      congest::BfsForest bfs_pass(part_root);
      const congest::PassResult r = sim.run(bfs_pass);
      t.messages += r.messages;
      t.rounds += r.rounds;
    }
    t.seconds = timer.seconds();
    return t;
  });
  report(out, "bfs", bfs);

  // Saturated delivery: one message per directed edge per round.
  const Throughput saturate = best_of(reps, [&] {
    Saturate sat(64);
    bench::Timer timer;
    const congest::PassResult r = sim.run(sat);
    return Throughput{r.messages, r.rounds, timer.seconds()};
  });
  report(out, "saturate", saturate);

  out.meta("peak_rss_bytes",
           static_cast<std::int64_t>(bench::peak_rss_bytes()));
  if (!out.write(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (peak rss %.1f MiB)\n", out_path.c_str(),
              static_cast<double>(bench::peak_rss_bytes()) / (1024 * 1024));
  return 0;
}
