// E8 -- Corollary 17: (1 + O(eps)) n-edge poly(1/eps)-spanners for
// minor-free graphs, compared with the Elkin-Neiman-style tradeoff the
// paper cites (Section 1.2): EN gives (2k-1)-stretch with O(n^{1+1/k})
// edges and needs k = omega(log n) for ultra-sparseness; our construction
// is ultra-sparse for any eps = o(1).
#include "bench/bench_common.h"
#include "apps/spanner.h"
#include "graph/generators.h"

using namespace cpt;

int main() {
  bench::header("E8: ultra-sparse spanners",
                "Corollary 17: (1+O(eps))n edges, poly(1/eps) stretch");
  Rng rng(17);
  const Graph g = gen::triangulated_grid(40, 40);
  std::printf("input: trigrid 40x40, n=%u m=%u\n\n", g.num_nodes(),
              g.num_edges());
  std::printf("%-8s %-9s %-10s %-12s %-12s %-10s %-10s\n", "eps", "mode",
              "|S|/n", "tree-edges", "cut-edges", "stretch", "rounds");
  for (const double eps : {0.5, 0.25, 0.1, 0.05}) {
    for (const bool randomized : {false, true}) {
      MinorFreeOptions opt;
      opt.epsilon = eps;
      opt.randomized = randomized;
      opt.delta = 0.1;
      opt.seed = 5;
      // Adaptive phase schedule: stop at the eps*m/2 cut target, so the
      // partition (and hence the size/stretch tradeoff) actually varies
      // with eps instead of collapsing to one part per component.
      opt.adaptive_phases = true;
      const SpannerResult s = build_spanner(g, opt);
      Rng sample_rng(99);
      const std::uint32_t stretch =
          measure_edge_stretch(g, s.edges, 300, sample_rng);
      std::printf("%-8.2f %-9s %-10.3f %-12llu %-12llu %-10u %-10llu\n", eps,
                  randomized ? "rand" : "det", s.size_ratio(g),
                  static_cast<unsigned long long>(s.tree_edges),
                  static_cast<unsigned long long>(s.cut_edges), stretch,
                  static_cast<unsigned long long>(s.ledger.total_rounds()));
    }
  }
  std::printf(
      "\nShape check: |S|/n -> 1 as eps -> 0 (ultra-sparse) while the\n"
      "stretch stays bounded by the poly(1/eps) part diameters -- the\n"
      "tradeoff Corollary 17 claims against Elkin-Neiman's k-round\n"
      "(2k-1)-stretch O(n^{1+1/k})-edge spanners.\n");
  return 0;
}
